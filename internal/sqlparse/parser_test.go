package sqlparse

import (
	"strings"
	"testing"

	"chronicledb/internal/value"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	s, err := ParseOne(src)
	if err != nil {
		t.Fatalf("ParseOne(%q): %v", src, err)
	}
	return s
}

func expectParseError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse(%q) succeeded, want error containing %q", src, fragment)
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Errorf("Parse(%q) error %q does not mention %q", src, err, fragment)
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT * FROM t WHERE a >= 1.5 AND b != 'o''k' -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
	// Find the escaped string.
	found := false
	for _, tok := range toks {
		if tok.kind == tokString && tok.text == "o'k" {
			found = true
		}
	}
	if !found {
		t.Error("escaped string not lexed")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Error("stray ! accepted")
	}
	if _, err := lex("a @ b"); err == nil {
		t.Error("stray @ accepted")
	}
	// <> is an alias for !=
	toks, err := lex("a <> b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokOp || toks[1].text != "!=" {
		t.Errorf("<> lexed as %v %q", toks[1].kind, toks[1].text)
	}
}

func TestParseCreateGroup(t *testing.T) {
	s := parseOne(t, "CREATE GROUP telecom")
	g, ok := s.(*CreateGroup)
	if !ok || g.Name != "telecom" {
		t.Errorf("parsed %+v", s)
	}
}

func TestParseCreateChronicle(t *testing.T) {
	s := parseOne(t, `CREATE CHRONICLE calls (acct STRING, minutes INT, cost FLOAT)
		IN GROUP telecom RETAIN 1000`)
	c, ok := s.(*CreateChronicle)
	if !ok {
		t.Fatalf("parsed %T", s)
	}
	if c.Name != "calls" || c.Group != "telecom" {
		t.Errorf("%+v", c)
	}
	if len(c.Cols) != 3 || c.Cols[0].Kind != value.KindString || c.Cols[1].Kind != value.KindInt || c.Cols[2].Kind != value.KindFloat {
		t.Errorf("cols = %+v", c.Cols)
	}
	if c.Retain == nil || *c.Retain != 1000 {
		t.Errorf("retain = %v", c.Retain)
	}

	s = parseOne(t, "CREATE CHRONICLE c (x INT) RETAIN ALL")
	if c := s.(*CreateChronicle); c.Retain == nil || *c.Retain != -1 {
		t.Errorf("RETAIN ALL = %v", c.Retain)
	}
	s = parseOne(t, "CREATE CHRONICLE c (x INT) RETAIN NONE")
	if c := s.(*CreateChronicle); c.Retain == nil || *c.Retain != 0 {
		t.Errorf("RETAIN NONE = %v", c.Retain)
	}
	s = parseOne(t, "CREATE CHRONICLE c (x INT)")
	if c := s.(*CreateChronicle); c.Retain != nil {
		t.Errorf("default retain = %v", c.Retain)
	}

	expectParseError(t, "CREATE CHRONICLE c (x BLOB)", "unknown type")
	expectParseError(t, "CREATE CHRONICLE c (x INT, KEY(x))", "no keys")
	expectParseError(t, "CREATE CHRONICLE c (x INT) RETAIN", "RETAIN")
}

func TestParseCreateRelation(t *testing.T) {
	s := parseOne(t, "CREATE RELATION customers (acct STRING, state STRING, KEY(acct))")
	r, ok := s.(*CreateRelation)
	if !ok {
		t.Fatalf("parsed %T", s)
	}
	if r.Name != "customers" || len(r.Cols) != 2 || len(r.Keys) != 1 || r.Keys[0] != "acct" {
		t.Errorf("%+v", r)
	}
	expectParseError(t, "CREATE RELATION r (x INT)", "KEY")
}

func TestParseCreateView(t *testing.T) {
	s := parseOne(t, `CREATE VIEW balances AS
		SELECT acct, SUM(cost) AS total, COUNT(*) AS n
		FROM calls
		JOIN customers ON calls.acct = customers.acct
		WHERE minutes > 0 AND (state = 'nj' OR state = 'ny')
		GROUP BY acct
		WITH STORE BTREE`)
	v, ok := s.(*CreateView)
	if !ok {
		t.Fatalf("parsed %T", s)
	}
	if v.Name != "balances" || v.From != "calls" || v.Store != "BTREE" {
		t.Errorf("%+v", v)
	}
	if len(v.Items) != 3 || v.Items[1].Agg != "SUM" || v.Items[1].As != "total" || !v.Items[2].Star {
		t.Errorf("items = %+v", v.Items)
	}
	if len(v.Joins) != 1 || v.Joins[0].Relation != "customers" || len(v.Joins[0].On) != 1 {
		t.Errorf("joins = %+v", v.Joins)
	}
	if len(v.Where.Conj) != 2 || len(v.Where.Conj[0]) != 1 || len(v.Where.Conj[1]) != 2 {
		t.Errorf("where = %+v", v.Where)
	}
	if len(v.GroupBy) != 1 || v.GroupBy[0].Name != "acct" {
		t.Errorf("groupby = %+v", v.GroupBy)
	}
}

func TestParseCreateViewDistinct(t *testing.T) {
	s := parseOne(t, "CREATE VIEW accts AS SELECT DISTINCT acct FROM calls")
	v := s.(*CreateView)
	if !v.Distinct || len(v.Items) != 1 || v.Items[0].Col.Name != "acct" {
		t.Errorf("%+v", v)
	}
	s = parseOne(t, "CREATE VIEW everything AS SELECT * FROM calls")
	if v := s.(*CreateView); !v.Star {
		t.Errorf("%+v", v)
	}
}

func TestParseCrossJoin(t *testing.T) {
	s := parseOne(t, "CREATE VIEW x AS SELECT acct, COUNT(*) AS n FROM calls CROSS JOIN rates GROUP BY acct")
	v := s.(*CreateView)
	if len(v.Joins) != 1 || !v.Joins[0].Cross || v.Joins[0].Relation != "rates" {
		t.Errorf("%+v", v.Joins)
	}
	expectParseError(t, "CREATE VIEW x AS SELECT a FROM c CROSS rates", "JOIN")
}

func TestParsePeriodicView(t *testing.T) {
	s := parseOne(t, `CREATE PERIODIC VIEW monthly AS
		SELECT acct, SUM(minutes) AS total FROM calls GROUP BY acct
		EVERY 2592000 WIDTH 7776000 OFFSET 100 EXPIRE 86400`)
	v := s.(*CreateView)
	if v.Periodic == nil {
		t.Fatal("periodic clause missing")
	}
	p := v.Periodic
	if p.Period != 2592000 || p.Width != 7776000 || p.Offset != 100 || p.Expire == nil || *p.Expire != 86400 {
		t.Errorf("%+v", p)
	}
	expectParseError(t, "CREATE PERIODIC VIEW v AS SELECT a, COUNT(*) AS n FROM c GROUP BY a", "EVERY")
	expectParseError(t, "CREATE VIEW v AS SELECT a, COUNT(*) AS n FROM c GROUP BY a EVERY 100", "PERIODIC")
}

func TestParseAppendUpsertDelete(t *testing.T) {
	s := parseOne(t, "APPEND INTO calls VALUES ('a', 10, 1.5), ('b', -3, 0.25)")
	a := s.(*Append)
	if len(a.Parts) != 1 || a.Parts[0].Chronicle != "calls" || len(a.Parts[0].Rows) != 2 {
		t.Fatalf("%+v", a)
	}
	rows := a.Parts[0].Rows
	if rows[0][0].AsString() != "a" || rows[0][1].AsInt() != 10 || rows[0][2].AsFloat() != 1.5 {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][1].AsInt() != -3 {
		t.Errorf("negative literal = %v", rows[1][1])
	}

	// Simultaneous multi-chronicle append.
	s = parseOne(t, "APPEND INTO calls VALUES ('a', 1, 0.5) ALSO INTO payments VALUES ('a', 9.0)")
	a = s.(*Append)
	if len(a.Parts) != 2 || a.Parts[1].Chronicle != "payments" || len(a.Parts[1].Rows) != 1 {
		t.Fatalf("multi-part = %+v", a)
	}

	s = parseOne(t, "UPSERT INTO customers VALUES ('a', 'nj')")
	u := s.(*Upsert)
	if u.Relation != "customers" || len(u.Rows) != 1 {
		t.Errorf("%+v", u)
	}

	s = parseOne(t, "DELETE FROM customers KEY ('a')")
	d := s.(*Delete)
	if d.Relation != "customers" || len(d.Key) != 1 || d.Key[0].AsString() != "a" {
		t.Errorf("%+v", d)
	}
}

func TestParseLiterals(t *testing.T) {
	s := parseOne(t, "APPEND INTO c VALUES (TRUE, FALSE, NULL, 'text')")
	a := s.(*Append)
	r := a.Parts[0].Rows[0]
	if !r[0].AsBool() || r[1].AsBool() || !r[2].IsNull() || r[3].AsString() != "text" {
		t.Errorf("literals = %v", r)
	}
}

func TestParseQuery(t *testing.T) {
	s := parseOne(t, "SELECT * FROM balances WHERE acct = 'a' LIMIT 10")
	q := s.(*Query)
	if q.From != "balances" || q.Limit != 10 || q.Where == nil {
		t.Errorf("%+v", q)
	}
	s = parseOne(t, "SELECT * FROM balances")
	if q := s.(*Query); q.Where != nil || q.Limit != 0 {
		t.Errorf("%+v", q)
	}
	expectParseError(t, "SELECT acct FROM balances", "SELECT *")
	expectParseError(t, "SELECT * FROM v LIMIT -1", "")
}

func TestParseExplainShow(t *testing.T) {
	if e := parseOne(t, "EXPLAIN VIEW balances").(*Explain); e.View != "balances" {
		t.Errorf("%+v", e)
	}
	for _, w := range []string{"VIEWS", "CHRONICLES", "RELATIONS", "STATS"} {
		if sh := parseOne(t, "SHOW "+w).(*Show); sh.What != w {
			t.Errorf("SHOW %s = %+v", w, sh)
		}
	}
	expectParseError(t, "SHOW TABLES", "cannot SHOW")
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := Parse(`
		CREATE GROUP g;
		CREATE CHRONICLE c (x INT) IN GROUP g;
		APPEND INTO c VALUES (1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("parsed %d statements", len(stmts))
	}
	if _, err := ParseOne("CREATE GROUP a; CREATE GROUP b"); err == nil {
		t.Error("ParseOne accepted two statements")
	}
}

func TestParseColumnColumnCondition(t *testing.T) {
	s := parseOne(t, "CREATE VIEW v AS SELECT DISTINCT a FROM c WHERE a = b")
	v := s.(*CreateView)
	cond := v.Where.Conj[0][0]
	if cond.RightCol == nil || cond.RightCol.Name != "b" {
		t.Errorf("cond = %+v", cond)
	}
}

func TestParseErrorsGeneral(t *testing.T) {
	expectParseError(t, "FROB x", "expected a statement")
	expectParseError(t, "CREATE TABLE t (x INT)", "expected GROUP")
	expectParseError(t, "CREATE GROUP g CREATE GROUP h", "';'")
	expectParseError(t, "APPEND INTO c VALUES 1", `"("`)
	expectParseError(t, "CREATE VIEW v AS SELECT SUM( FROM c", "")
}
