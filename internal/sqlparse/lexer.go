// Package sqlparse implements the declarative view-definition language of
// the chronicle model. The paper's requirement: summary queries "specified
// declaratively (an SQL like language may be used), so that these queries
// can be answered without requiring the entire transactional history to be
// stored". Statements parse to an AST; the planner lowers view definitions
// into summarized chronicle algebra, rejecting anything outside SCA with
// the Theorem 4.3 justification.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // single-quoted literal
	tokNumber
	tokOp    // = != < <= > >=
	tokPunct // ( ) , ; . *
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// lex tokenizes src. It never fails on identifiers/numbers; unterminated
// strings and stray runes produce errors with positions.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-': // comment to EOL
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i + 1
			seenDot := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					// Disambiguate "1.5" from "t.col" — a dot followed by a
					// digit continues the number.
					if j+1 >= len(src) || src[j+1] < '0' || src[j+1] > '9' {
						break
					}
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case c == '!' || c == '<' || c == '>' || c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d (use != )", i)
			} else if c == '<' && i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, string(c), i})
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '.' || c == '*':
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
