package sqlparse

import (
	"strings"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/relation"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// testCatalog is a static Catalog for planner tests.
type testCatalog struct {
	chronicles map[string]*chronicle.Chronicle
	relations  map[string]*relation.Relation
}

func (c *testCatalog) Chronicle(name string) (*chronicle.Chronicle, bool) {
	v, ok := c.chronicles[name]
	return v, ok
}

func (c *testCatalog) Relation(name string) (*relation.Relation, bool) {
	v, ok := c.relations[name]
	return v, ok
}

func newCatalog(t *testing.T) *testCatalog {
	t.Helper()
	g := chronicle.NewGroup("telecom")
	calls, err := g.NewChronicle("calls", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
		value.Column{Name: "cost", Kind: value.KindFloat},
	), chronicle.RetainNone)
	if err != nil {
		t.Fatal(err)
	}
	payments, err := g.NewChronicle("payments", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "amount", Kind: value.KindFloat},
	), chronicle.RetainNone)
	if err != nil {
		t.Fatal(err)
	}
	cust, err := relation.New("customers", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "state", Kind: value.KindString},
	), []int{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	return &testCatalog{
		chronicles: map[string]*chronicle.Chronicle{"calls": calls, "payments": payments},
		relations:  map[string]*relation.Relation{"customers": cust},
	}
}

func planView(t *testing.T, cat Catalog, src string) *ViewPlan {
	t.Helper()
	s, err := ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := PlanView(cat, s.(*CreateView))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return plan
}

func expectPlanError(t *testing.T, cat Catalog, src, fragment string) {
	t.Helper()
	s, err := ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = PlanView(cat, s.(*CreateView))
	if err == nil {
		t.Fatalf("PlanView(%q) succeeded, want error about %q", src, fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err, fragment)
	}
}

func TestPlanSimpleGroupBy(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat,
		"CREATE VIEW totals AS SELECT acct, SUM(cost) AS total, COUNT(*) AS n FROM calls GROUP BY acct")
	if plan.Def.Mode != view.SummarizeGroupBy {
		t.Errorf("mode = %v", plan.Def.Mode)
	}
	if len(plan.Def.GroupCols) != 1 || plan.Def.GroupCols[0] != 0 {
		t.Errorf("group cols = %v", plan.Def.GroupCols)
	}
	if len(plan.Def.Aggs) != 2 || plan.Def.Aggs[0].Col != 2 || plan.Def.Aggs[1].Col != -1 {
		t.Errorf("aggs = %+v", plan.Def.Aggs)
	}
	if plan.Info.Lang != algebra.LangCA1 || plan.Info.IMClass() != algebra.IMConstant {
		t.Errorf("classified %s/%s", plan.Info.Lang, plan.Info.IMClass())
	}
	if plan.Store != view.StoreHash {
		t.Errorf("default store = %v", plan.Store)
	}
}

func TestPlanDefaultAggNames(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat,
		"CREATE VIEW v AS SELECT acct, SUM(cost), COUNT(*) FROM calls GROUP BY acct")
	if plan.Def.Aggs[0].Name != "sum_cost" || plan.Def.Aggs[1].Name != "count" {
		t.Errorf("agg names = %+v", plan.Def.Aggs)
	}
}

func TestPlanKeyJoinClassifiesCAKey(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, `CREATE VIEW by_state AS
		SELECT state, SUM(minutes) AS total FROM calls
		JOIN customers ON calls.acct = customers.acct
		GROUP BY state`)
	if plan.Info.Lang != algebra.LangCAKey || plan.Info.IMClass() != algebra.IMLogR {
		t.Errorf("classified %s/%s", plan.Info.Lang, plan.Info.IMClass())
	}
	// state resolves to the relation-side column (index 4 after concat).
	if len(plan.Def.GroupCols) != 1 || plan.Def.GroupCols[0] != 4 {
		t.Errorf("group cols = %v", plan.Def.GroupCols)
	}
}

func TestPlanSwappedJoinSides(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, `CREATE VIEW v AS
		SELECT state, COUNT(*) AS n FROM calls
		JOIN customers ON customers.acct = calls.acct
		GROUP BY state`)
	if plan.Info.Lang != algebra.LangCAKey {
		t.Errorf("swapped join classified %s", plan.Info.Lang)
	}
}

func TestPlanNonKeyJoinClassifiesCA(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, `CREATE VIEW v AS
		SELECT minutes, COUNT(*) AS n FROM calls
		JOIN customers ON calls.acct = customers.state
		GROUP BY minutes`)
	if plan.Info.Lang != algebra.LangCA || plan.Info.IMClass() != algebra.IMRk {
		t.Errorf("non-key join classified %s/%s", plan.Info.Lang, plan.Info.IMClass())
	}
}

func TestPlanCrossJoinClassifiesCA(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat,
		"CREATE VIEW v AS SELECT calls.acct, COUNT(*) AS n FROM calls CROSS JOIN customers GROUP BY calls.acct")
	if plan.Info.Lang != algebra.LangCA {
		t.Errorf("cross join classified %s", plan.Info.Lang)
	}
}

func TestPlanWhereStacksSelections(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, `CREATE VIEW v AS
		SELECT acct, SUM(cost) AS total FROM calls
		WHERE minutes > 0 AND (acct = 'a' OR acct = 'b')
		GROUP BY acct`)
	// Two stacked selections above the scan.
	s1, ok := plan.Def.Expr.(*algebra.Select)
	if !ok {
		t.Fatalf("root = %T", plan.Def.Expr)
	}
	if _, ok := s1.In.(*algebra.Select); !ok {
		t.Fatalf("second selection missing: %T", s1.In)
	}
}

func TestPlanDispatchFilterExtraction(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, `CREATE VIEW mine AS
		SELECT acct, SUM(cost) AS total FROM calls
		WHERE acct = 'acct7' AND minutes > 0
		GROUP BY acct`)
	if plan.FilterChronicle == nil {
		t.Fatal("dispatch filter not extracted")
	}
	if col, k, ok := plan.Filter.EqualityConstant(); !ok || col != 0 || k.AsString() != "acct7" {
		t.Errorf("filter = %v %v %v", col, k, ok)
	}
	// Range-only WHERE extracts nothing.
	plan = planView(t, cat, `CREATE VIEW big AS
		SELECT acct, SUM(cost) AS total FROM calls WHERE minutes > 100 GROUP BY acct`)
	if plan.FilterChronicle != nil {
		t.Error("range filter wrongly used for dispatch index")
	}
}

func TestPlanProjectViews(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, "CREATE VIEW accts AS SELECT DISTINCT acct FROM calls")
	if plan.Def.Mode != view.SummarizeProject || len(plan.Def.Cols) != 1 || plan.Def.Cols[0] != 0 {
		t.Errorf("%+v", plan.Def)
	}
	plan = planView(t, cat, "CREATE VIEW everything AS SELECT * FROM calls")
	if len(plan.Def.Cols) != 3 {
		t.Errorf("star cols = %v", plan.Def.Cols)
	}
}

func TestPlanPeriodic(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, `CREATE PERIODIC VIEW monthly AS
		SELECT acct, SUM(cost) AS total FROM calls GROUP BY acct
		EVERY 100 WIDTH 300 EXPIRE 50`)
	if plan.Periodic == nil {
		t.Fatal("periodic plan missing")
	}
	if plan.Periodic.Calendar.Period != 100 || plan.Periodic.Calendar.Width != 300 {
		t.Errorf("calendar = %+v", plan.Periodic.Calendar)
	}
	if plan.Periodic.ExpireAfter != 50 {
		t.Errorf("expire = %d", plan.Periodic.ExpireAfter)
	}
	// Default width = period; default expire = -1.
	plan = planView(t, cat, `CREATE PERIODIC VIEW m2 AS
		SELECT acct, SUM(cost) AS total FROM calls GROUP BY acct EVERY 100`)
	if plan.Periodic.Calendar.Width != 100 || plan.Periodic.ExpireAfter != -1 {
		t.Errorf("defaults = %+v expire %d", plan.Periodic.Calendar, plan.Periodic.ExpireAfter)
	}
}

func TestPlanStoreSelection(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat,
		"CREATE VIEW v AS SELECT acct, COUNT(*) AS n FROM calls GROUP BY acct WITH STORE BTREE")
	if plan.Store != view.StoreBTree {
		t.Errorf("store = %v", plan.Store)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := newCatalog(t)
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct, COUNT(*) AS n FROM nowhere GROUP BY acct",
		"unknown chronicle")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct, COUNT(*) AS n FROM customers GROUP BY acct",
		"is a relation")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct, COUNT(*) AS n FROM calls JOIN payments ON calls.acct = payments.acct GROUP BY acct",
		"Theorem 4.3")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct, COUNT(*) AS n FROM calls JOIN customers ON calls.minutes > customers.acct GROUP BY acct",
		"equijoin")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct, COUNT(*) AS n FROM calls JOIN customers ON calls.acct = 'x' GROUP BY acct",
		"compare columns")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT nothere, COUNT(*) AS n FROM calls GROUP BY nothere",
		"unknown column")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT minutes, SUM(cost) AS s FROM calls GROUP BY acct",
		"not in GROUP BY")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct, MEDIAN(cost) AS m FROM calls GROUP BY acct",
		"unknown aggregation")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct, SUM(*) AS s FROM calls GROUP BY acct",
		"COUNT(*)")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT acct FROM calls GROUP BY acct",
		"at least one aggregation")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT * FROM calls GROUP BY acct",
		"SELECT *")
	// Ambiguous column after join (acct exists on both sides).
	expectPlanError(t, cat, `CREATE VIEW v AS
		SELECT acct, COUNT(*) AS n FROM calls
		JOIN customers ON calls.acct = customers.acct GROUP BY acct`,
		"ambiguous")
}

func TestLowerWhere(t *testing.T) {
	names := []string{"acct", "total"}
	be := &BoolExpr{Conj: [][]Cond{
		{{Left: ColRef{Name: "acct"}, Op: "=", Right: value.Str("a")}},
		{{Left: ColRef{Name: "total"}, Op: ">", Right: value.Int(10)}},
	}}
	preds, err := LowerWhere(names, be)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("preds = %d", len(preds))
	}
	row := value.Tuple{value.Str("a"), value.Int(20)}
	if !preds[0].Eval(row) || !preds[1].Eval(row) {
		t.Error("lowered predicates misevaluate")
	}
	if _, err := LowerWhere(names, &BoolExpr{Conj: [][]Cond{
		{{Left: ColRef{Name: "ghost"}, Op: "=", Right: value.Int(1)}},
	}}); err == nil {
		t.Error("unknown column accepted")
	}
	if got, err := LowerWhere(names, nil); err != nil || got != nil {
		t.Error("nil where should lower to nil")
	}
}

func TestPlanSNJoin(t *testing.T) {
	cat := newCatalog(t)
	plan := planView(t, cat, `CREATE VIEW joined AS
		SELECT calls.acct, SUM(amount) AS paid FROM calls
		JOIN payments ON SN
		GROUP BY calls.acct`)
	if plan.Info.Joins != 1 || plan.Info.Lang != algebra.LangCA1 {
		t.Errorf("SN join: joins=%d lang=%s", plan.Info.Joins, plan.Info.Lang)
	}
	// amount resolves to the payments side.
	if plan.Def.Aggs[0].Col != 4 {
		t.Errorf("agg col = %d", plan.Def.Aggs[0].Col)
	}
	expectPlanError(t, cat, `CREATE VIEW bad AS
		SELECT calls.acct, COUNT(*) AS n FROM calls JOIN customers ON SN GROUP BY calls.acct`,
		"not a chronicle")
}

func TestPlanNumericAggregateValidation(t *testing.T) {
	cat := newCatalog(t)
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT minutes, SUM(acct) AS s FROM calls GROUP BY minutes",
		"numeric")
	expectPlanError(t, cat,
		"CREATE VIEW v AS SELECT minutes, STDDEV(acct) AS s FROM calls GROUP BY minutes",
		"numeric")
	// MIN/MAX over strings stay legal.
	plan := planView(t, cat,
		"CREATE VIEW v AS SELECT minutes, MIN(acct) AS first_acct FROM calls GROUP BY minutes")
	if plan.Def.Aggs[0].Func != aggregate.Min {
		t.Errorf("aggs = %+v", plan.Def.Aggs)
	}
}
