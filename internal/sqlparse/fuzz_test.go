package sqlparse

import "testing"

// FuzzParse: the parser must never panic on arbitrary input, and anything
// it accepts must be an understood statement type.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"CREATE CHRONICLE calls (acct STRING, minutes INT) IN GROUP g RETAIN 10",
		"CREATE RELATION r (k STRING, v INT, KEY(k))",
		"CREATE VIEW v AS SELECT a, SUM(b) AS s FROM c JOIN r ON c.a = r.k WHERE b > 0 AND (a = 'x' OR a = 'y') GROUP BY a WITH STORE BTREE",
		"CREATE PERIODIC VIEW p AS SELECT a, COUNT(*) FROM c GROUP BY a EVERY 100 WIDTH 300 OFFSET 1 EXPIRE 5",
		"APPEND INTO c VALUES ('a', 1, 2.5, TRUE, NULL) ALSO INTO d VALUES (9)",
		"UPSERT INTO r VALUES ('k', 1)",
		"DELETE FROM r KEY ('k')",
		"SELECT * FROM v WHERE a >= 'm' LIMIT 3",
		"DROP VIEW v; SHOW VIEWS; EXPLAIN VIEW v",
		"CREATE VIEW v AS SELECT DISTINCT a FROM c JOIN d ON SN",
		"-- comment\nSELECT * FROM v",
		"'unterminated",
		"SELECT * FROM",
		"CREATE ((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			switch s.(type) {
			case *CreateGroup, *CreateChronicle, *CreateRelation, *CreateView,
				*DropView, *Append, *Upsert, *Delete, *Query, *Explain, *Show:
			default:
				t.Fatalf("unknown statement type %T", s)
			}
		}
	})
}
