package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"chronicledb/internal/algebra"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/engine"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/stats"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// Config configures a Router.
type Config struct {
	// Shards is the number of single-writer shards (≥ 1).
	Shards int
	// QueueDepth is each shard's append-queue capacity (default 1024).
	QueueDepth int
	// Engine is the per-shard engine configuration.
	Engine engine.Config
}

// Router fronts N single-writer shards. Chronicle groups (and the views
// that depend on them) are hash-partitioned across shards; relations are
// shared state updated under an epoch barrier; queries scatter/gather.
type Router struct {
	cfg    Config
	shards []*shardState
	wg     sync.WaitGroup

	// lsn is the shared LSN allocator: every shard engine and every
	// relation update draws from it, giving one total mutation order.
	lsn atomic.Uint64

	// relGate is the epoch barrier. Shard writers and direct appliers hold
	// the read side per batch; relation updates, checkpoints, and other
	// quiescing operations take the write side.
	relGate sync.RWMutex
	// relMu serializes relation updates (and guards relRecorder/relCommit).
	relMu       sync.Mutex
	relRecorder func(engine.Mutation) error
	relCommit   func() error
	relUpdates  atomic.Int64

	// mu guards the routing catalog.
	mu        sync.RWMutex
	names     map[string]string // object name -> kind, across all shards
	chronHome map[string]int    // chronicle name -> shard index
	viewHome  map[string]int    // view / periodic-view name -> shard index
	relations map[string]*relation.Relation

	// closeMu guards closed and the shard queues against concurrent Close.
	closeMu sync.RWMutex
	closed  bool
}

// NewRouter creates a router with cfg.Shards single-writer shards.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	r := &Router{
		cfg:       cfg,
		names:     make(map[string]string),
		chronHome: make(map[string]int),
		viewHome:  make(map[string]int),
		relations: make(map[string]*relation.Relation),
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shardState{
			id:   i,
			eng:  engine.New(cfg.Engine),
			reqs: make(chan *appendReq, cfg.QueueDepth),
		}
		s.eng.SetLSNSource(func() uint64 { return r.lsn.Add(1) })
		r.shards = append(r.shards, s)
		r.wg.Add(1)
		go s.run(&r.relGate, &r.wg)
	}
	return r, nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Engine returns shard i's engine (diagnostics, recorder wiring).
func (r *Router) Engine(i int) *engine.Engine { return r.shards[i].eng }

// ShardOfGroup returns the shard index owning a group name.
func (r *Router) ShardOfGroup(group string) int {
	h := fnv.New32a()
	h.Write([]byte(group))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// Close stops every shard writer after draining its queue. Further appends
// fail; reads keep working.
func (r *Router) Close() {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return
	}
	r.closed = true
	r.closeMu.Unlock()
	for _, s := range r.shards {
		close(s.reqs)
	}
	r.wg.Wait()
}

// Barrier quiesces every shard's in-flight batches, runs fn with the
// database frozen, and resumes. Checkpointing uses it to cut a consistent
// cross-shard snapshot.
func (r *Router) Barrier(fn func() error) error {
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relGate.Lock()
	defer r.relGate.Unlock()
	return fn()
}

// SetRelationRecorder installs the WAL hook for router-level relation
// updates (the per-shard append hooks are installed on the shard engines).
func (r *Router) SetRelationRecorder(fn func(engine.Mutation) error) {
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relRecorder = fn
}

// SetRelationCommitter installs the durability hook run after each
// router-level relation update (the relation segment's group-commit door).
func (r *Router) SetRelationCommitter(fn func() error) {
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relCommit = fn
}

// SetShardCommitter installs shard i's durability hook: the writer
// goroutine runs it once per coalesced batch, and the direct (replay-style)
// append paths run it per mutation.
func (r *Router) SetShardCommitter(i int, fn func() error) {
	r.shards[i].commit = fn
}

// --- catalog ------------------------------------------------------------

func (r *Router) claim(name, kind string) error {
	if name == "" {
		return fmt.Errorf("shard: empty %s name", kind)
	}
	if existing, ok := r.names[name]; ok {
		return fmt.Errorf("engine: name %q already used by a %s", name, existing)
	}
	r.names[name] = kind
	return nil
}

// CreateGroup creates a chronicle group on its home shard.
func (r *Router) CreateGroup(name string) (*chronicle.Group, error) {
	return r.shards[r.ShardOfGroup(name)].eng.CreateGroup(name)
}

// CreateChronicle creates a chronicle on the shard owning its group.
func (r *Router) CreateChronicle(name, groupName string, schema *value.Schema, retain *chronicle.Retention) (*chronicle.Chronicle, error) {
	if groupName == "" {
		groupName = name
	}
	idx := r.ShardOfGroup(groupName)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claim(name, "chronicle"); err != nil {
		return nil, err
	}
	c, err := r.shards[idx].eng.CreateChronicle(name, groupName, schema, retain)
	if err != nil {
		delete(r.names, name)
		return nil, err
	}
	r.chronHome[name] = idx
	return c, nil
}

// CreateRelation creates a relation shared by every shard: relations cut
// across groups, so one versioned instance is adopted into every shard's
// catalog and all shards resolve the name to the same state.
func (r *Router) CreateRelation(name string, schema *value.Schema, keyCols []int) (*relation.Relation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claim(name, "relation"); err != nil {
		return nil, err
	}
	rel, err := relation.New(name, schema, keyCols, r.cfg.Engine.RelationHistory)
	if err != nil {
		delete(r.names, name)
		return nil, err
	}
	for _, s := range r.shards {
		if err := s.eng.AdoptRelation(rel); err != nil {
			delete(r.names, name)
			return nil, fmt.Errorf("shard %d: %w", s.id, err)
		}
	}
	r.relations[name] = rel
	return rel, nil
}

// homeOfDef locates the single shard owning every chronicle a view
// definition depends on. Views spanning groups on different shards are
// rejected: the single-writer invariant requires each view to be
// maintained by exactly one shard.
func (r *Router) homeOfDef(name string, expr algebra.Node) (int, error) {
	info := algebra.Analyze(expr)
	if len(info.Chronicles) == 0 {
		return 0, fmt.Errorf("shard: view %q depends on no chronicles", name)
	}
	home := -1
	for _, c := range info.Chronicles {
		idx, ok := r.chronHome[c.Name()]
		if !ok {
			return 0, fmt.Errorf("shard: view %q references unknown chronicle %q", name, c.Name())
		}
		if home == -1 {
			home = idx
		} else if home != idx {
			return 0, fmt.Errorf("shard: view %q spans chronicle groups owned by different shards (%d and %d); views must be maintainable by a single writer", name, home, idx)
		}
	}
	return home, nil
}

// CreateView materializes a persistent view on the shard owning its
// chronicles and registers it with that shard's dispatcher.
func (r *Router) CreateView(def view.Def, kind view.StoreKind, filter pred.Predicate, filterChronicle *chronicle.Chronicle) (*view.View, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, err := r.homeOfDef(def.Name, def.Expr)
	if err != nil {
		return nil, err
	}
	if err := r.claim(def.Name, "view"); err != nil {
		return nil, err
	}
	// Backfill inside CreateView reads relation state: hold the epoch
	// gate so a concurrent relation update cannot tear the initial scan.
	r.relGate.RLock()
	v, err := r.shards[idx].eng.CreateView(def, kind, filter, filterChronicle)
	r.relGate.RUnlock()
	if err != nil {
		delete(r.names, def.Name)
		return nil, err
	}
	r.viewHome[def.Name] = idx
	return v, nil
}

// CreatePeriodicView creates a periodic view family on its home shard.
func (r *Router) CreatePeriodicView(name string, def view.Def, cal calendar.Calendar, expireAfter int64, kind view.StoreKind) (*calendar.PeriodicView, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, err := r.homeOfDef(name, def.Expr)
	if err != nil {
		return nil, err
	}
	if err := r.claim(name, "periodic view"); err != nil {
		return nil, err
	}
	pv, err := r.shards[idx].eng.CreatePeriodicView(name, def, cal, expireAfter, kind)
	if err != nil {
		delete(r.names, name)
		return nil, err
	}
	r.viewHome[name] = idx
	return pv, nil
}

// DropView removes a persistent or periodic view from its home shard.
func (r *Router) DropView(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.viewHome[name]
	if !ok {
		return fmt.Errorf("engine: no view named %q", name)
	}
	if err := r.shards[idx].eng.DropView(name); err != nil {
		return err
	}
	delete(r.viewHome, name)
	delete(r.names, name)
	return nil
}

// --- appends ------------------------------------------------------------

func (r *Router) homeOfChronicle(name string) (*shardState, error) {
	r.mu.RLock()
	idx, ok := r.chronHome[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown chronicle %q", name)
	}
	return r.shards[idx], nil
}

// enqueue hands req to shard s's writer and waits for the result.
func (r *Router) enqueue(s *shardState, req *appendReq) error {
	r.closeMu.RLock()
	if r.closed {
		r.closeMu.RUnlock()
		return fmt.Errorf("shard: router closed")
	}
	s.reqs <- req
	r.closeMu.RUnlock()
	<-req.done
	return nil
}

// Append inserts tuples into one chronicle as a single transaction on its
// home shard, returning after every affected view there is maintained.
func (r *Router) Append(chronicleName string, tuples []value.Tuple) (int64, error) {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return 0, err
	}
	req := &appendReq{chronicle: chronicleName, tuples: tuples, done: make(chan struct{})}
	if err := r.enqueue(s, req); err != nil {
		return 0, err
	}
	return req.sn, req.err
}

// AppendEach inserts each tuple as its own transaction via one queue
// round-trip — the bulk ingest path the HTTP /append endpoint uses. The
// shard writer applies the whole run under a single engine-lock
// acquisition.
func (r *Router) AppendEach(chronicleName string, tuples []value.Tuple) (first, last int64, err error) {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return 0, 0, err
	}
	req := &appendReq{chronicle: chronicleName, tuples: tuples, each: true, done: make(chan struct{})}
	if err := r.enqueue(s, req); err != nil {
		return 0, 0, err
	}
	return req.first, req.last, req.err
}

// AppendBatch inserts tuples into several chronicles of one group
// simultaneously, sharing one sequence number.
func (r *Router) AppendBatch(parts []engine.MutationPart) (int64, error) {
	if len(parts) == 0 {
		return 0, fmt.Errorf("engine: empty batch")
	}
	s, err := r.homeOfChronicle(parts[0].Chronicle)
	if err != nil {
		return 0, err
	}
	req := &appendReq{parts: parts, done: make(chan struct{})}
	if err := r.enqueue(s, req); err != nil {
		return 0, err
	}
	return req.sn, req.err
}

// AppendAt applies an append with caller-supplied SN and chronon directly
// (bypassing the queue); WAL replay and tests use it.
func (r *Router) AppendAt(chronicleName string, sn, chronon int64, tuples []value.Tuple) (int64, error) {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return 0, err
	}
	r.relGate.RLock()
	defer r.relGate.RUnlock()
	out, err := s.eng.AppendAt(chronicleName, sn, chronon, tuples)
	if err != nil {
		return 0, err
	}
	if s.commit != nil {
		if err := s.commit(); err != nil {
			return 0, err
		}
	}
	return out, nil
}

// AppendBatchAt is AppendBatch with caller-supplied SN and chronon,
// applied directly (WAL replay path).
func (r *Router) AppendBatchAt(parts []engine.MutationPart, sn, chronon int64) (int64, error) {
	if len(parts) == 0 {
		return 0, fmt.Errorf("engine: empty batch")
	}
	s, err := r.homeOfChronicle(parts[0].Chronicle)
	if err != nil {
		return 0, err
	}
	r.relGate.RLock()
	defer r.relGate.RUnlock()
	out, err := s.eng.AppendBatchAt(parts, sn, chronon)
	if err != nil {
		return 0, err
	}
	if s.commit != nil {
		if err := s.commit(); err != nil {
			return 0, err
		}
	}
	return out, nil
}

// --- relation updates (epoch barrier) -----------------------------------

func (r *Router) relationByName(name string) (*relation.Relation, error) {
	r.mu.RLock()
	rel, ok := r.relations[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	return rel, nil
}

// Upsert applies a proactive relation update under the epoch barrier: the
// router stamps a global LSN, waits for every shard's in-flight batches to
// drain, applies the update to the shared relation (visible in every
// shard's catalog), and resumes. Appends that completed before this call
// used the old version; appends that start after it see the new one — on
// every shard, exactly the §2.3 semantics.
func (r *Router) Upsert(relationName string, t value.Tuple) error {
	rel, err := r.relationByName(relationName)
	if err != nil {
		return err
	}
	coerced, err := rel.Schema().Coerce(t)
	if err != nil {
		return fmt.Errorf("engine: relation %s: %w", relationName, err)
	}
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relGate.Lock()
	defer r.relGate.Unlock()
	lsn := r.lsn.Add(1)
	if r.relRecorder != nil {
		m := engine.Mutation{Kind: engine.MutUpsert, LSN: lsn, Relation: relationName, Tuple: coerced}
		if err := r.relRecorder(m); err != nil {
			return fmt.Errorf("engine: recording upsert: %w", err)
		}
	}
	if err := rel.Upsert(lsn, coerced); err != nil {
		return err
	}
	r.relUpdates.Add(1)
	if r.relCommit != nil {
		return r.relCommit()
	}
	return nil
}

// DeleteKey applies a proactive relation delete under the epoch barrier.
func (r *Router) DeleteKey(relationName string, keyVals value.Tuple) (bool, error) {
	rel, err := r.relationByName(relationName)
	if err != nil {
		return false, err
	}
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relGate.Lock()
	defer r.relGate.Unlock()
	lsn := r.lsn.Add(1)
	if r.relRecorder != nil {
		m := engine.Mutation{Kind: engine.MutDelete, LSN: lsn, Relation: relationName, Tuple: keyVals}
		if err := r.relRecorder(m); err != nil {
			return false, fmt.Errorf("engine: recording delete: %w", err)
		}
	}
	deleted := rel.Delete(lsn, keyVals)
	if deleted {
		r.relUpdates.Add(1)
	}
	if r.relCommit != nil {
		return deleted, r.relCommit()
	}
	return deleted, nil
}

// --- queries (scatter/gather) -------------------------------------------

func (r *Router) homeOfView(name string) (*shardState, bool) {
	r.mu.RLock()
	idx, ok := r.viewHome[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return r.shards[idx], true
}

// Stats sums the per-shard engine counters plus router-level relation
// updates.
func (r *Router) Stats() engine.Stats {
	var out engine.Stats
	for _, s := range r.shards {
		st := s.eng.Stats()
		out.Appends += st.Appends
		out.TuplesAppended += st.TuplesAppended
		out.RelationUpdates += st.RelationUpdates
		out.MaintenanceNs += st.MaintenanceNs
		out.ViewsMaintained += st.ViewsMaintained
	}
	out.RelationUpdates += r.relUpdates.Load()
	return out
}

// MaintenanceLatency merges every shard's maintenance-latency histogram
// into one distribution (the SHOW STATS / HTTP gather path).
func (r *Router) MaintenanceLatency() stats.Snapshot {
	var merged stats.Histogram
	for _, s := range r.shards {
		h := s.eng.MaintenanceHistogram()
		merged.Merge(&h)
	}
	return merged.Snapshot()
}

// ShardLatencies returns each shard's own latency snapshot, in shard
// order.
func (r *Router) ShardLatencies() []stats.Snapshot {
	out := make([]stats.Snapshot, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.eng.MaintenanceLatency()
	}
	return out
}

// LSN returns the current global logical sequence number.
func (r *Router) LSN() uint64 { return r.lsn.Load() }

// RestoreLSN advances the global LSN to at least lsn (checkpoint
// recovery).
func (r *Router) RestoreLSN(lsn uint64) {
	for {
		cur := r.lsn.Load()
		if lsn <= cur || r.lsn.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// GroupNames gathers group names across shards, sorted.
func (r *Router) GroupNames() []string {
	var out []string
	for _, s := range r.shards {
		out = append(out, s.eng.GroupNames()...)
	}
	sort.Strings(out)
	return out
}

// Group returns a group by name from its home shard.
func (r *Router) Group(name string) (*chronicle.Group, bool) {
	return r.shards[r.ShardOfGroup(name)].eng.Group(name)
}

// Chronicle returns a chronicle by name.
func (r *Router) Chronicle(name string) (*chronicle.Chronicle, bool) {
	s, err := r.homeOfChronicle(name)
	if err != nil {
		return nil, false
	}
	return s.eng.Chronicle(name)
}

// Relation returns the shared relation by name.
func (r *Router) Relation(name string) (*relation.Relation, bool) {
	r.mu.RLock()
	rel, ok := r.relations[name]
	r.mu.RUnlock()
	return rel, ok
}

// View returns a persistent view by name from its home shard.
func (r *Router) View(name string) (*view.View, bool) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, false
	}
	return s.eng.View(name)
}

// PeriodicView returns a periodic view family by name.
func (r *Router) PeriodicView(name string) (*calendar.PeriodicView, bool) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, false
	}
	return s.eng.PeriodicView(name)
}

// ViewLookup answers a summary query from one shard, serialized against
// that shard's appends.
func (r *Router) ViewLookup(name string, key value.Tuple) (value.Tuple, bool, error) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewLookup(name, key)
}

// ViewRows materializes a view's contents from its home shard.
func (r *Router) ViewRows(name string) ([]value.Tuple, error) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewRows(name)
}

// ViewScanRange scans a view's key range on its home shard.
func (r *Router) ViewScanRange(name string, lo, hi value.Tuple) ([]value.Tuple, error) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewScanRange(name, lo, hi)
}

// RelationRows materializes a relation's live tuples in key order,
// serialized against relation updates by the epoch gate.
func (r *Router) RelationRows(name string) ([]value.Tuple, error) {
	rel, err := r.relationByName(name)
	if err != nil {
		return nil, err
	}
	r.relGate.RLock()
	defer r.relGate.RUnlock()
	var out []value.Tuple
	rel.Scan(func(t value.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out, nil
}

// ChronicleRows copies a chronicle's retained window from its home shard.
func (r *Router) ChronicleRows(name string) ([]chronicle.Row, error) {
	s, err := r.homeOfChronicle(name)
	if err != nil {
		return nil, err
	}
	return s.eng.ChronicleRows(name)
}

func (r *Router) gatherNames(get func(*engine.Engine) []string) []string {
	var out []string
	for _, s := range r.shards {
		out = append(out, get(s.eng)...)
	}
	sort.Strings(out)
	return out
}

// ViewNames returns persistent view names across all shards, sorted.
func (r *Router) ViewNames() []string {
	return r.gatherNames(func(e *engine.Engine) []string { return e.ViewNames() })
}

// ChronicleNames returns chronicle names across all shards, sorted.
func (r *Router) ChronicleNames() []string {
	return r.gatherNames(func(e *engine.Engine) []string { return e.ChronicleNames() })
}

// RelationNames returns the shared relation names, sorted.
func (r *Router) RelationNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.relations))
	for n := range r.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PeriodicViewNames returns periodic view family names across shards,
// sorted.
func (r *Router) PeriodicViewNames() []string {
	return r.gatherNames(func(e *engine.Engine) []string { return e.PeriodicViewNames() })
}
