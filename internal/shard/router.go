package shard

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"chronicledb/internal/algebra"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/dedup"
	"chronicledb/internal/engine"
	"chronicledb/internal/feed"
	"chronicledb/internal/keyenc"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/stats"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

// Config configures a Router.
type Config struct {
	// Shards is the number of single-writer shards (≥ 1).
	Shards int
	// QueueDepth is each shard's append-queue capacity (default 1024).
	QueueDepth int
	// Engine is the per-shard engine configuration.
	Engine engine.Config
}

// Router fronts N single-writer shards. Chronicle groups (and the views
// that depend on them) are hash-partitioned across shards; relations are
// shared state updated under an epoch barrier; queries scatter/gather.
type Router struct {
	cfg    Config
	shards []*shardState
	wg     sync.WaitGroup

	// lsn is the shared LSN allocator: every shard engine and every
	// relation update draws from it, giving one total mutation order.
	lsn atomic.Uint64

	// relGate is the epoch barrier. Shard writers and direct appliers hold
	// the read side per batch; relation updates, checkpoints, and other
	// quiescing operations take the write side.
	relGate sync.RWMutex
	// relMu serializes relation updates (and guards relRecorder/relCommit).
	relMu       sync.Mutex
	relRecorder func(engine.Mutation) error
	relCommit   func() error
	relUpdates  atomic.Int64

	// mu guards the routing catalog.
	mu        sync.RWMutex
	names     map[string]string // object name -> kind, across all shards
	chronHome map[string]int    // chronicle name -> shard index
	viewHome  map[string]int    // view / periodic-view name -> shard index
	relations map[string]*relation.Relation

	// closeMu guards closed and the shard queues against concurrent Close.
	closeMu sync.RWMutex
	closed  bool
}

// NewRouter creates a router with cfg.Shards single-writer shards.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	r := &Router{
		cfg:       cfg,
		names:     make(map[string]string),
		chronHome: make(map[string]int),
		viewHome:  make(map[string]int),
		relations: make(map[string]*relation.Relation),
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shardState{
			id:   i,
			eng:  engine.New(cfg.Engine),
			reqs: make(chan *appendReq, cfg.QueueDepth),
		}
		s.eng.SetLSNSource(func() uint64 { return r.lsn.Add(1) })
		r.shards = append(r.shards, s)
		r.wg.Add(1)
		go s.run(&r.relGate, &r.wg)
	}
	return r, nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Engine returns shard i's engine (diagnostics, recorder wiring).
func (r *Router) Engine(i int) *engine.Engine { return r.shards[i].eng }

// ShardOfGroup returns the shard index owning a group name.
func (r *Router) ShardOfGroup(group string) int {
	h := fnv.New32a()
	h.Write([]byte(group))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// Close stops every shard writer after draining its queue. Further appends
// fail; reads keep working.
func (r *Router) Close() {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return
	}
	r.closed = true
	r.closeMu.Unlock()
	for _, s := range r.shards {
		close(s.reqs)
	}
	r.wg.Wait()
	// Writers are drained: no maintenance batch can be in flight, so the
	// per-engine fold pools can retire.
	for _, s := range r.shards {
		s.eng.StopMaintenance()
	}
}

// Barrier quiesces every shard's in-flight batches, runs fn with the
// database frozen, and resumes. Checkpointing uses it to cut a consistent
// cross-shard snapshot.
func (r *Router) Barrier(fn func() error) error {
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relGate.Lock()
	defer r.relGate.Unlock()
	return fn()
}

// SetRelationRecorder installs the WAL hook for router-level relation
// updates (the per-shard append hooks are installed on the shard engines).
func (r *Router) SetRelationRecorder(fn func(engine.Mutation) error) {
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relRecorder = fn
}

// SetRelationCommitter installs the durability hook run after each
// router-level relation update (the relation segment's group-commit door).
func (r *Router) SetRelationCommitter(fn func() error) {
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relCommit = fn
}

// SetShardCommitter installs shard i's durability hook: the writer
// goroutine runs it once per coalesced batch, and the direct (replay-style)
// append paths run it per mutation.
func (r *Router) SetShardCommitter(i int, fn func() error) {
	r.shards[i].commit = fn
}

// SetFeed installs one shared changefeed hub into every shard engine, in
// deferred mode: captured frames stay pending until the shard writer (or a
// direct append path) detaches them with TakeFeed and publishes them after
// its commit. Every shard draws LSNs from the router's shared allocator
// and every view is maintained by exactly one shard, so the shared hub
// merges the multi-shard feeds into per-view streams in LSN order.
func (r *Router) SetFeed(h *feed.Hub) {
	for _, s := range r.shards {
		s.eng.SetFeed(h, true)
	}
}

// --- catalog ------------------------------------------------------------

func (r *Router) claim(name, kind string) error {
	if name == "" {
		return fmt.Errorf("shard: empty %s name", kind)
	}
	if existing, ok := r.names[name]; ok {
		return fmt.Errorf("engine: name %q already used by a %s", name, existing)
	}
	r.names[name] = kind
	return nil
}

// CreateGroup creates a chronicle group on its home shard.
func (r *Router) CreateGroup(name string) (*chronicle.Group, error) {
	return r.shards[r.ShardOfGroup(name)].eng.CreateGroup(name)
}

// CreateChronicle creates a chronicle on the shard owning its group.
func (r *Router) CreateChronicle(name, groupName string, schema *value.Schema, retain *chronicle.Retention) (*chronicle.Chronicle, error) {
	if groupName == "" {
		groupName = name
	}
	idx := r.ShardOfGroup(groupName)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claim(name, "chronicle"); err != nil {
		return nil, err
	}
	c, err := r.shards[idx].eng.CreateChronicle(name, groupName, schema, retain)
	if err != nil {
		delete(r.names, name)
		return nil, err
	}
	r.chronHome[name] = idx
	return c, nil
}

// CreateRelation creates a relation shared by every shard: relations cut
// across groups, so one versioned instance is adopted into every shard's
// catalog and all shards resolve the name to the same state.
func (r *Router) CreateRelation(name string, schema *value.Schema, keyCols []int) (*relation.Relation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claim(name, "relation"); err != nil {
		return nil, err
	}
	rel, err := relation.New(name, schema, keyCols, r.cfg.Engine.RelationHistory)
	if err != nil {
		delete(r.names, name)
		return nil, err
	}
	for _, s := range r.shards {
		if err := s.eng.AdoptRelation(rel); err != nil {
			delete(r.names, name)
			return nil, fmt.Errorf("shard %d: %w", s.id, err)
		}
	}
	r.relations[name] = rel
	return rel, nil
}

// homeOfDef locates the single shard owning every chronicle a view
// definition depends on. Views spanning groups on different shards are
// rejected: the single-writer invariant requires each view to be
// maintained by exactly one shard.
func (r *Router) homeOfDef(name string, expr algebra.Node) (int, error) {
	info := algebra.Analyze(expr)
	if len(info.Chronicles) == 0 {
		return 0, fmt.Errorf("shard: view %q depends on no chronicles", name)
	}
	home := -1
	for _, c := range info.Chronicles {
		idx, ok := r.chronHome[c.Name()]
		if !ok {
			return 0, fmt.Errorf("shard: view %q references unknown chronicle %q", name, c.Name())
		}
		if home == -1 {
			home = idx
		} else if home != idx {
			return 0, fmt.Errorf("shard: view %q spans chronicle groups owned by different shards (%d and %d); views must be maintainable by a single writer", name, home, idx)
		}
	}
	return home, nil
}

// CreateView materializes a persistent view on the shard owning its
// chronicles and registers it with that shard's dispatcher.
func (r *Router) CreateView(def view.Def, kind view.StoreKind, filter pred.Predicate, filterChronicle *chronicle.Chronicle) (*view.View, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, err := r.homeOfDef(def.Name, def.Expr)
	if err != nil {
		return nil, err
	}
	if err := r.claim(def.Name, "view"); err != nil {
		return nil, err
	}
	// Backfill inside CreateView reads relation state: hold the epoch
	// gate so a concurrent relation update cannot tear the initial scan.
	r.relGate.RLock()
	v, err := r.shards[idx].eng.CreateView(def, kind, filter, filterChronicle)
	r.relGate.RUnlock()
	if err != nil {
		delete(r.names, def.Name)
		return nil, err
	}
	r.viewHome[def.Name] = idx
	return v, nil
}

// CreatePeriodicView creates a periodic view family on its home shard.
func (r *Router) CreatePeriodicView(name string, def view.Def, cal calendar.Calendar, expireAfter int64, kind view.StoreKind) (*calendar.PeriodicView, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, err := r.homeOfDef(name, def.Expr)
	if err != nil {
		return nil, err
	}
	if err := r.claim(name, "periodic view"); err != nil {
		return nil, err
	}
	pv, err := r.shards[idx].eng.CreatePeriodicView(name, def, cal, expireAfter, kind)
	if err != nil {
		delete(r.names, name)
		return nil, err
	}
	r.viewHome[name] = idx
	return pv, nil
}

// DropView removes a persistent or periodic view from its home shard.
func (r *Router) DropView(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.viewHome[name]
	if !ok {
		return fmt.Errorf("engine: no view named %q", name)
	}
	if err := r.shards[idx].eng.DropView(name); err != nil {
		return err
	}
	delete(r.viewHome, name)
	delete(r.names, name)
	return nil
}

// --- appends ------------------------------------------------------------

func (r *Router) homeOfChronicle(name string) (*shardState, error) {
	r.mu.RLock()
	idx, ok := r.chronHome[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown chronicle %q", name)
	}
	return r.shards[idx], nil
}

// enqueue hands req to shard s's writer and waits for the result.
func (r *Router) enqueue(s *shardState, req *appendReq) error {
	r.closeMu.RLock()
	if r.closed {
		r.closeMu.RUnlock()
		return fmt.Errorf("shard: router closed")
	}
	s.reqs <- req
	r.closeMu.RUnlock()
	<-req.done
	return nil
}

// Append inserts tuples into one chronicle as a single transaction on its
// home shard, returning after every affected view there is maintained.
func (r *Router) Append(chronicleName string, tuples []value.Tuple) (int64, error) {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return 0, err
	}
	req := &appendReq{chronicle: chronicleName, tuples: tuples, done: make(chan struct{})}
	if err := r.enqueue(s, req); err != nil {
		return 0, err
	}
	return req.sn, req.err
}

// AppendEach inserts each tuple as its own transaction via one queue
// round-trip — the bulk ingest path the HTTP /append endpoint uses. The
// shard writer applies the whole run under a single engine-lock
// acquisition.
func (r *Router) AppendEach(chronicleName string, tuples []value.Tuple) (first, last int64, err error) {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return 0, 0, err
	}
	req := &appendReq{chronicle: chronicleName, tuples: tuples, each: true, done: make(chan struct{})}
	if err := r.enqueue(s, req); err != nil {
		return 0, 0, err
	}
	return req.first, req.last, req.err
}

// AppendEachIdem is AppendEach with exactly-once semantics: the request
// routes to the chronicle's home shard, whose engine answers a repeat
// (clientID, requestID) pair from its dedup table instead of re-applying.
// Because a chronicle's home shard is stable across restarts (hash of its
// group name), a retried request always lands on the shard holding its
// dedup entry.
func (r *Router) AppendEachIdem(chronicleName string, tuples []value.Tuple, clientID, requestID string) (first, last int64, deduped bool, err error) {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return 0, 0, false, err
	}
	req := &appendReq{
		chronicle: chronicleName, tuples: tuples, each: true,
		clientID: clientID, requestID: requestID, done: make(chan struct{}),
	}
	if err := r.enqueue(s, req); err != nil {
		return 0, 0, false, err
	}
	return req.first, req.last, req.deduped, req.err
}

// AppendEachAt replays an idempotent bulk append with caller-supplied
// first SN and chronon directly on the home shard (WAL replay path),
// re-inserting the dedup entry there.
func (r *Router) AppendEachAt(chronicleName string, firstSN, chronon int64, tuples []value.Tuple, clientID, requestID string) error {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return err
	}
	r.relGate.RLock()
	defer r.relGate.RUnlock()
	err = s.eng.AppendEachAt(chronicleName, firstSN, chronon, tuples, clientID, requestID)
	fb := s.eng.TakeFeed()
	if err != nil {
		fb.Abandon()
		return err
	}
	if s.commit != nil {
		if cerr := s.commit(); cerr != nil {
			fb.Abandon()
			return cerr
		}
	}
	fb.Publish()
	return nil
}

// AppendBatch inserts tuples into several chronicles of one group
// simultaneously, sharing one sequence number.
func (r *Router) AppendBatch(parts []engine.MutationPart) (int64, error) {
	if len(parts) == 0 {
		return 0, fmt.Errorf("engine: empty batch")
	}
	s, err := r.homeOfChronicle(parts[0].Chronicle)
	if err != nil {
		return 0, err
	}
	req := &appendReq{parts: parts, done: make(chan struct{})}
	if err := r.enqueue(s, req); err != nil {
		return 0, err
	}
	return req.sn, req.err
}

// AppendAt applies an append with caller-supplied SN and chronon directly
// (bypassing the queue); WAL replay and tests use it.
func (r *Router) AppendAt(chronicleName string, sn, chronon int64, tuples []value.Tuple) (int64, error) {
	s, err := r.homeOfChronicle(chronicleName)
	if err != nil {
		return 0, err
	}
	r.relGate.RLock()
	defer r.relGate.RUnlock()
	out, err := s.eng.AppendAt(chronicleName, sn, chronon, tuples)
	fb := s.eng.TakeFeed()
	if err != nil {
		fb.Abandon()
		return 0, err
	}
	if s.commit != nil {
		if err := s.commit(); err != nil {
			fb.Abandon()
			return 0, err
		}
	}
	fb.Publish()
	return out, nil
}

// AppendBatchAt is AppendBatch with caller-supplied SN and chronon,
// applied directly (WAL replay path).
func (r *Router) AppendBatchAt(parts []engine.MutationPart, sn, chronon int64) (int64, error) {
	if len(parts) == 0 {
		return 0, fmt.Errorf("engine: empty batch")
	}
	s, err := r.homeOfChronicle(parts[0].Chronicle)
	if err != nil {
		return 0, err
	}
	r.relGate.RLock()
	defer r.relGate.RUnlock()
	out, err := s.eng.AppendBatchAt(parts, sn, chronon)
	fb := s.eng.TakeFeed()
	if err != nil {
		fb.Abandon()
		return 0, err
	}
	if s.commit != nil {
		if err := s.commit(); err != nil {
			fb.Abandon()
			return 0, err
		}
	}
	fb.Publish()
	return out, nil
}

// --- relation updates (epoch barrier) -----------------------------------

func (r *Router) relationByName(name string) (*relation.Relation, error) {
	r.mu.RLock()
	rel, ok := r.relations[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	return rel, nil
}

// Upsert applies a proactive relation update under the epoch barrier: the
// router stamps a global LSN, waits for every shard's in-flight batches to
// drain, applies the update to the shared relation (visible in every
// shard's catalog), and resumes. Appends that completed before this call
// used the old version; appends that start after it see the new one — on
// every shard, exactly the §2.3 semantics.
func (r *Router) Upsert(relationName string, t value.Tuple) error {
	rel, err := r.relationByName(relationName)
	if err != nil {
		return err
	}
	coerced, err := rel.Schema().Coerce(t)
	if err != nil {
		return fmt.Errorf("engine: relation %s: %w", relationName, err)
	}
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relGate.Lock()
	defer r.relGate.Unlock()
	lsn := r.lsn.Add(1)
	if r.relRecorder != nil {
		m := engine.Mutation{Kind: engine.MutUpsert, LSN: lsn, Relation: relationName, Tuple: coerced}
		if err := r.relRecorder(m); err != nil {
			return fmt.Errorf("engine: recording upsert: %w", err)
		}
	}
	if err := rel.Upsert(lsn, coerced); err != nil {
		return err
	}
	r.relUpdates.Add(1)
	if r.relCommit != nil {
		return r.relCommit()
	}
	return nil
}

// DeleteKey applies a proactive relation delete under the epoch barrier.
func (r *Router) DeleteKey(relationName string, keyVals value.Tuple) (bool, error) {
	rel, err := r.relationByName(relationName)
	if err != nil {
		return false, err
	}
	r.relMu.Lock()
	defer r.relMu.Unlock()
	r.relGate.Lock()
	defer r.relGate.Unlock()
	lsn := r.lsn.Add(1)
	if r.relRecorder != nil {
		m := engine.Mutation{Kind: engine.MutDelete, LSN: lsn, Relation: relationName, Tuple: keyVals}
		if err := r.relRecorder(m); err != nil {
			return false, fmt.Errorf("engine: recording delete: %w", err)
		}
	}
	deleted := rel.Delete(lsn, keyVals)
	if deleted {
		r.relUpdates.Add(1)
	}
	if r.relCommit != nil {
		return deleted, r.relCommit()
	}
	return deleted, nil
}

// --- queries (scatter/gather) -------------------------------------------

func (r *Router) homeOfView(name string) (*shardState, bool) {
	r.mu.RLock()
	idx, ok := r.viewHome[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return r.shards[idx], true
}

// scatter runs fn once per shard, concurrently, and waits for all of
// them. Each shard's read path is independently synchronized (engine
// reads run against per-view snapshots), so fan-out needs no router-level
// lock; the gather half is whatever fn does with its shard's result —
// callers write into a per-shard slot indexed by i. With one shard the
// call is inlined to avoid the goroutine round-trip.
func (r *Router) scatter(fn func(i int, e *engine.Engine)) {
	if len(r.shards) == 1 {
		fn(0, r.shards[0].eng)
		return
	}
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			fn(i, e)
		}(i, s.eng)
	}
	wg.Wait()
}

// Stats sums the per-shard engine counters (gathered in parallel) plus
// router-level relation updates.
func (r *Router) Stats() engine.Stats {
	per := make([]engine.Stats, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) { per[i] = e.Stats() })
	var out engine.Stats
	for _, st := range per {
		out.Appends += st.Appends
		out.TuplesAppended += st.TuplesAppended
		out.RelationUpdates += st.RelationUpdates
		out.MaintenanceNs += st.MaintenanceNs
		out.ViewsMaintained += st.ViewsMaintained
		out.DedupHits += st.DedupHits
		out.SharedHits += st.SharedHits
	}
	out.RelationUpdates += r.relUpdates.Load()
	return out
}

// DedupEntries gathers every shard's live idempotency entries (checkpoint
// building). Order is shard-major; restore routes each entry back to its
// chronicle's home shard, so cross-shard order is irrelevant.
func (r *Router) DedupEntries() []dedup.Entry {
	per := make([][]dedup.Entry, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) { per[i] = e.DedupEntries() })
	var out []dedup.Entry
	for _, ents := range per {
		out = append(out, ents...)
	}
	return out
}

// RestoreDedupEntry reinstates one checkpointed idempotency entry on the
// shard owning its chronicle. Entries whose chronicle no longer resolves
// (dropped between checkpoint and crash) are ignored: with no chronicle
// there is nothing a retry could double-apply.
func (r *Router) RestoreDedupEntry(ent dedup.Entry) {
	s, err := r.homeOfChronicle(ent.Chronicle)
	if err != nil {
		return
	}
	s.eng.RestoreDedupEntry(ent)
}

// DedupStats sums the per-shard idempotency-table counters.
func (r *Router) DedupStats() (entries int, hits int64, evictions int64) {
	type trio struct {
		entries   int
		hits      int64
		evictions int64
	}
	per := make([]trio, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) {
		per[i].entries, per[i].hits, per[i].evictions = e.DedupStats()
	})
	for _, t := range per {
		entries += t.entries
		hits += t.hits
		evictions += t.evictions
	}
	return entries, hits, evictions
}

// MaintenanceLatency merges every shard's maintenance-latency histogram
// into one distribution (the SHOW STATS / HTTP gather path).
func (r *Router) MaintenanceLatency() stats.Snapshot {
	per := make([]stats.Histogram, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) { per[i] = e.MaintenanceHistogram() })
	var merged stats.Histogram
	for i := range per {
		merged.Merge(&per[i])
	}
	return merged.Snapshot()
}

// ShardLatencies returns each shard's own latency snapshot, in shard
// order.
func (r *Router) ShardLatencies() []stats.Snapshot {
	out := make([]stats.Snapshot, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) { out[i] = e.MaintenanceLatency() })
	return out
}

// ReadStats merges the per-shard read-path counters and latency
// histograms into one view of query traffic.
func (r *Router) ReadStats() engine.ReadStats {
	lookups := make([]int64, len(r.shards))
	scans := make([]int64, len(r.shards))
	hists := make([]stats.Histogram, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) {
		lookups[i], scans[i] = e.ReadCounts()
		hists[i] = e.ReadHistogram()
	})
	var out engine.ReadStats
	var merged stats.Histogram
	for i := range r.shards {
		out.Lookups += lookups[i]
		out.Scans += scans[i]
		merged.Merge(&hists[i])
	}
	out.Latency = merged.Snapshot()
	return out
}

// OldestSnapshotUnixNano returns the publication time of the oldest live
// view snapshot across every shard — the worst-case staleness bound of the
// lock-free read path. Zero means no shard publishes a snapshot.
func (r *Router) OldestSnapshotUnixNano() int64 {
	per := make([]int64, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) { per[i] = e.OldestSnapshotUnixNano() })
	var oldest int64
	for _, at := range per {
		if at != 0 && (oldest == 0 || at < oldest) {
			oldest = at
		}
	}
	return oldest
}

// LSN returns the current global logical sequence number.
func (r *Router) LSN() uint64 { return r.lsn.Load() }

// RestoreLSN advances the global LSN to at least lsn (checkpoint
// recovery).
func (r *Router) RestoreLSN(lsn uint64) {
	for {
		cur := r.lsn.Load()
		if lsn <= cur || r.lsn.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// GroupNames gathers group names across shards, sorted.
func (r *Router) GroupNames() []string {
	var out []string
	for _, s := range r.shards {
		out = append(out, s.eng.GroupNames()...)
	}
	sort.Strings(out)
	return out
}

// Group returns a group by name from its home shard.
func (r *Router) Group(name string) (*chronicle.Group, bool) {
	return r.shards[r.ShardOfGroup(name)].eng.Group(name)
}

// Chronicle returns a chronicle by name.
func (r *Router) Chronicle(name string) (*chronicle.Chronicle, bool) {
	s, err := r.homeOfChronicle(name)
	if err != nil {
		return nil, false
	}
	return s.eng.Chronicle(name)
}

// Relation returns the shared relation by name.
func (r *Router) Relation(name string) (*relation.Relation, bool) {
	r.mu.RLock()
	rel, ok := r.relations[name]
	r.mu.RUnlock()
	return rel, ok
}

// View returns a persistent view by name from its home shard.
func (r *Router) View(name string) (*view.View, bool) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, false
	}
	return s.eng.View(name)
}

// ViewSharedPlan lists a view's shared-plan nodes from its home shard
// (sharing is per shard: views co-located with their group share deltas).
func (r *Router) ViewSharedPlan(name string) ([]algebra.PlanNodeInfo, bool) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, false
	}
	return s.eng.ViewSharedPlan(name)
}

// MaintWorkers reports the per-shard maintenance parallelism bound (every
// shard engine resolves the same configuration).
func (r *Router) MaintWorkers() int { return r.shards[0].eng.MaintWorkers() }

// PeriodicView returns a periodic view family by name.
func (r *Router) PeriodicView(name string) (*calendar.PeriodicView, bool) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, false
	}
	return s.eng.PeriodicView(name)
}

// ViewLookup answers a summary query from one shard, serialized against
// that shard's appends.
func (r *Router) ViewLookup(name string, key value.Tuple) (value.Tuple, bool, error) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewLookup(name, key)
}

// ViewRows materializes a view's contents from its home shard.
func (r *Router) ViewRows(name string) ([]value.Tuple, error) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewRows(name)
}

// ViewScanRange scans a view's key range on its home shard.
func (r *Router) ViewScanRange(name string, lo, hi value.Tuple) ([]value.Tuple, error) {
	s, ok := r.homeOfView(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewScanRange(name, lo, hi)
}

// ViewScanFunc streams a view's rows in group-key order from its home
// shard's snapshot until fn returns false.
func (r *Router) ViewScanFunc(name string, fn func(value.Tuple) bool) error {
	s, ok := r.homeOfView(name)
	if !ok {
		return fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewScanFunc(name, fn)
}

// ViewScanAt streams a view's rows from its home shard and returns the
// applied LSN of the scanned state (the changefeed snapshot catch-up
// anchor).
func (r *Router) ViewScanAt(name string, fn func(value.Tuple) bool) (uint64, error) {
	s, ok := r.homeOfView(name)
	if !ok {
		return 0, fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewScanAt(name, fn)
}

// ViewScanRangeFunc streams the view rows with group key in [lo, hi) from
// the view's home shard until fn returns false.
func (r *Router) ViewScanRangeFunc(name string, lo, hi value.Tuple, fn func(value.Tuple) bool) error {
	s, ok := r.homeOfView(name)
	if !ok {
		return fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewScanRangeFunc(name, lo, hi, fn)
}

// ViewScanDescFunc streams a view's rows in descending group-key order
// from its home shard — the "latest N groups" access path.
func (r *Router) ViewScanDescFunc(name string, fn func(value.Tuple) bool) error {
	s, ok := r.homeOfView(name)
	if !ok {
		return fmt.Errorf("engine: unknown view %q", name)
	}
	return s.eng.ViewScanDescFunc(name, fn)
}

// MergedRow is one element of a cross-shard merged view scan: a row and
// the view it came from, delivered in global group-key order.
type MergedRow struct {
	View string
	Row  value.Tuple
}

// keyedRow pairs a row with its encoded group key for merging.
type keyedRow struct {
	key  []byte
	view string
	row  value.Tuple
}

// ViewScanRangeMerged streams rows from several views — typically the same
// summary partitioned across shards by group — merged into one globally
// key-ordered stream. One goroutine per involved shard walks that shard's
// view snapshots (each already key-ordered by its B-tree) and merges its
// local streams; the gather side then k-way merges the per-shard runs by
// encoded group key, breaking ties by view name. lo and hi bound the group
// key half-open range [lo, hi); nil hi means unbounded above, nil lo
// unbounded below. Rows passed to fn are caller-owned.
func (r *Router) ViewScanRangeMerged(names []string, lo, hi value.Tuple, fn func(MergedRow) bool) error {
	byShard := make(map[int][]string)
	r.mu.RLock()
	for _, n := range names {
		idx, ok := r.viewHome[n]
		if !ok {
			r.mu.RUnlock()
			return fmt.Errorf("engine: unknown view %q", n)
		}
		byShard[idx] = append(byShard[idx], n)
	}
	r.mu.RUnlock()

	var (
		mu       sync.Mutex
		runs     [][]keyedRow
		firstErr error
		wg       sync.WaitGroup
	)
	for idx, viewNames := range byShard {
		wg.Add(1)
		go func(e *engine.Engine, viewNames []string) {
			defer wg.Done()
			run, err := shardRun(e, viewNames, lo, hi)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			runs = append(runs, run)
		}(r.shards[idx].eng, viewNames)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	mergeKeyed(runs, func(kr keyedRow) bool {
		return fn(MergedRow{View: kr.view, Row: kr.row})
	})
	return nil
}

// ViewScanMerged is ViewScanRangeMerged over the full key range.
func (r *Router) ViewScanMerged(names []string, fn func(MergedRow) bool) error {
	return r.ViewScanRangeMerged(names, nil, nil, fn)
}

// shardRun collects one shard's contribution to a merged scan: each named
// view's rows in key order (straight off its snapshot's B-tree iterator),
// locally merged into a single key-ordered run.
func shardRun(e *engine.Engine, names []string, lo, hi value.Tuple) ([]keyedRow, error) {
	var loKey []byte
	if lo != nil {
		loKey = keyenc.AppendTuple(nil, lo)
	}
	streams := make([][]keyedRow, 0, len(names))
	for _, n := range names {
		v, ok := e.View(n)
		if !ok {
			return nil, fmt.Errorf("engine: unknown view %q", n)
		}
		// The group key is the row minus the trailing aggregate results
		// (projection views have no aggregates: the whole row is the key).
		aggs := len(v.Def().Aggs)
		var rows []keyedRow
		collect := func(t value.Tuple) bool {
			key := keyenc.AppendTuple(nil, t[:len(t)-aggs])
			if loKey != nil && bytes.Compare(key, loKey) < 0 {
				return true
			}
			rows = append(rows, keyedRow{key: key, view: n, row: t})
			return true
		}
		var err error
		if hi != nil {
			// An encoded range scan handles both bounds; loKey filtering
			// above is then redundant but harmless.
			err = e.ViewScanRangeFunc(n, lo, hi, collect)
		} else {
			err = e.ViewScanFunc(n, collect)
		}
		if err != nil {
			return nil, err
		}
		streams = append(streams, rows)
	}
	var run []keyedRow
	mergeKeyed(streams, func(kr keyedRow) bool {
		run = append(run, kr)
		return true
	})
	return run, nil
}

// mergeKeyed k-way merges key-ordered runs into one key-ordered stream,
// breaking key ties by view name so output is deterministic regardless of
// which shard goroutine finished first. Runs are few (≤ shard count), so a
// linear scan per emit beats a heap.
func mergeKeyed(runs [][]keyedRow, emit func(keyedRow) bool) {
	heads := make([]int, len(runs))
	for {
		best := -1
		for i, run := range runs {
			if heads[i] >= len(run) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			a, b := run[heads[i]], runs[best][heads[best]]
			if c := bytes.Compare(a.key, b.key); c < 0 || (c == 0 && a.view < b.view) {
				best = i
			}
		}
		if best == -1 {
			return
		}
		if !emit(runs[best][heads[best]]) {
			return
		}
		heads[best]++
	}
}

// RelationRows materializes a relation's live tuples in key order,
// serialized against relation updates by the epoch gate.
func (r *Router) RelationRows(name string) ([]value.Tuple, error) {
	rel, err := r.relationByName(name)
	if err != nil {
		return nil, err
	}
	r.relGate.RLock()
	defer r.relGate.RUnlock()
	var out []value.Tuple
	rel.Scan(func(t value.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out, nil
}

// ChronicleRows copies a chronicle's retained window from its home shard.
func (r *Router) ChronicleRows(name string) ([]chronicle.Row, error) {
	s, err := r.homeOfChronicle(name)
	if err != nil {
		return nil, err
	}
	return s.eng.ChronicleRows(name)
}

func (r *Router) gatherNames(get func(*engine.Engine) []string) []string {
	per := make([][]string, len(r.shards))
	r.scatter(func(i int, e *engine.Engine) { per[i] = get(e) })
	var out []string
	for _, names := range per {
		out = append(out, names...)
	}
	sort.Strings(out)
	return out
}

// ViewNames returns persistent view names across all shards, sorted.
func (r *Router) ViewNames() []string {
	return r.gatherNames(func(e *engine.Engine) []string { return e.ViewNames() })
}

// ChronicleNames returns chronicle names across all shards, sorted.
func (r *Router) ChronicleNames() []string {
	return r.gatherNames(func(e *engine.Engine) []string { return e.ChronicleNames() })
}

// RelationNames returns the shared relation names, sorted.
func (r *Router) RelationNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.relations))
	for n := range r.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PeriodicViewNames returns periodic view family names across shards,
// sorted.
func (r *Router) PeriodicViewNames() []string {
	return r.gatherNames(func(e *engine.Engine) []string { return e.PeriodicViewNames() })
}
