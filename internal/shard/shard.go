// Package shard implements the sharded execution layer: a Router hashes
// every chronicle group — and, via the dispatch dependency registry, the
// views defined over it — onto one of N single-writer shards, each owning
// a private engine instance, an append queue with batch coalescing, its
// own maintenance-latency histogram, and (wired up by the public facade)
// its own WAL segment.
//
// The design exploits the structure of the chronicle data model directly:
// groups share a sequence-number domain but are mutually independent, and
// chronicles are insert-only, so per-group streams parallelize without
// coordination. The one cross-cutting mutation — a proactive relation
// update (§2.3) — is applied under an epoch barrier: the router stamps a
// global LSN, quiesces every shard's in-flight batches, applies the update
// to the shared relation state visible from every shard's catalog, and
// resumes. Because all shards draw LSNs from one shared allocator, the
// paper's semantics hold globally: a relation update is ordered before
// exactly the appends that started after it, on every shard.
package shard

import (
	"sync"

	"chronicledb/internal/engine"
	"chronicledb/internal/value"
)

// maxCoalesce bounds how many queued appends one writer pass absorbs under
// a single epoch-gate acquisition.
const maxCoalesce = 128

// appendReq is one queued append awaiting its shard's writer goroutine.
type appendReq struct {
	chronicle string
	tuples    []value.Tuple         // single-transaction append
	parts     []engine.MutationPart // simultaneous group batch (one SN)
	each      bool                  // bulk: one transaction per tuple
	clientID  string                // idempotent bulk: dedup pair
	requestID string                // idempotent bulk: dedup pair

	sn          int64 // single/batch result
	first, last int64 // bulk result
	deduped     bool  // idempotent bulk: answered from the dedup table
	err         error
	done        chan struct{}
}

func (q *appendReq) apply(eng *engine.Engine) {
	switch {
	case q.parts != nil:
		q.sn, q.err = eng.AppendBatch(q.parts)
	case q.each && q.clientID != "":
		q.first, q.last, q.deduped, q.err = eng.AppendEachIdem(q.chronicle, q.tuples, q.clientID, q.requestID)
	case q.each:
		q.first, q.last, q.err = eng.AppendEach(q.chronicle, q.tuples)
	default:
		q.sn, q.err = eng.Append(q.chronicle, q.tuples)
	}
}

// shardState is one single-writer shard: an engine plus its append queue.
type shardState struct {
	id   int
	eng  *engine.Engine
	reqs chan *appendReq
	// commit, when set, makes the drained batch durable (the shard WAL
	// segment's group-commit door). One fsync acknowledges every request
	// the writer coalesced.
	commit func() error
}

// run is the shard's writer goroutine. It is the only goroutine that
// applies appends to this shard's engine; it holds the router's epoch gate
// (read side) across each coalesced batch so relation updates can quiesce
// every shard by taking the write side.
func (s *shardState) run(gate *sync.RWMutex, wg *sync.WaitGroup) {
	defer wg.Done()
	batch := make([]*appendReq, 0, maxCoalesce)
	for req := range s.reqs {
		batch = append(batch[:0], req)
	coalesce:
		for len(batch) < maxCoalesce {
			select {
			case more, ok := <-s.reqs:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
			default:
				break coalesce
			}
		}
		gate.RLock()
		for _, q := range batch {
			q.apply(s.eng)
		}
		// The engine runs in deferred-feed mode: view deltas captured by the
		// coalesced batch stay pending until detached here, so the single
		// group commit below decides the fate of the whole pass's frames.
		fb := s.eng.TakeFeed()
		// Group commit: one fsync covers the whole coalesced batch. No
		// request is acknowledged (done closed) until it is durable; a
		// commit failure un-acks every request the fsync would have covered.
		var cerr error
		if s.commit != nil {
			if cerr = s.commit(); cerr != nil {
				for _, q := range batch {
					if q.err == nil {
						q.err = cerr
					}
				}
			}
		}
		// Publish-after-commit: frames reach subscribers only once durable,
		// and before the requests are acknowledged, so an acked append's
		// delta is already in flight to every watcher.
		if cerr != nil {
			fb.Abandon()
		} else {
			fb.Publish()
		}
		for _, q := range batch {
			close(q.done)
		}
		gate.RUnlock()
	}
}
