package shard

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/engine"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

func callsSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
	)
}

func custSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "state", Kind: value.KindString},
	)
}

func newRouter(t testing.TB, n int) *Router {
	t.Helper()
	r, err := NewRouter(Config{Shards: n, Engine: engine.Config{
		DefaultRetention: chronicle.RetainAll,
		RelationHistory:  true,
		DispatchIndexed:  true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// usageDef is a per-chronicle group-by summary view.
func usageDef(name string, c *chronicle.Chronicle) view.Def {
	return view.Def{
		Name:      name,
		Expr:      algebra.NewScan(c),
		Mode:      view.SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs: []aggregate.Spec{
			{Func: aggregate.Sum, Col: 1, Name: "total"},
			{Func: aggregate.Count, Col: -1, Name: "n"},
		},
	}
}

func mustCreateChronicle(t testing.TB, r *Router, name, group string) *chronicle.Chronicle {
	t.Helper()
	c, err := r.CreateChronicle(name, group, callsSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRouterBasics(t *testing.T) {
	r := newRouter(t, 4)
	c := mustCreateChronicle(t, r, "calls", "telecom")
	if _, err := r.CreateChronicle("calls", "", callsSchema(), nil); err == nil {
		t.Error("duplicate chronicle accepted")
	}
	if _, err := r.CreateView(usageDef("usage", c), view.StoreHash, pred.True(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateView(usageDef("usage", c), view.StoreHash, pred.True(), nil); err == nil {
		t.Error("duplicate view accepted")
	}
	sn, err := r.Append("calls", []value.Tuple{{value.Str("alice"), value.Int(10)}})
	if err != nil || sn != 0 {
		t.Fatalf("Append = %d, %v", sn, err)
	}
	if _, err := r.Append("nope", nil); err == nil {
		t.Error("append to unknown chronicle accepted")
	}
	row, ok, err := r.ViewLookup("usage", value.Tuple{value.Str("alice")})
	if err != nil || !ok || row[1].AsInt() != 10 {
		t.Fatalf("ViewLookup = %v %v %v", row, ok, err)
	}
	if got := r.Stats().Appends; got != 1 {
		t.Errorf("Stats().Appends = %d", got)
	}
	if home := r.ShardOfGroup("telecom"); home < 0 || home >= r.NumShards() {
		t.Errorf("ShardOfGroup out of range: %d", home)
	}
	if names := r.ChronicleNames(); len(names) != 1 || names[0] != "calls" {
		t.Errorf("ChronicleNames = %v", names)
	}
}

func TestViewHomeFollowsChronicle(t *testing.T) {
	r := newRouter(t, 4)
	for i := 0; i < 8; i++ {
		group := fmt.Sprintf("g%d", i)
		name := fmt.Sprintf("calls%d", i)
		c := mustCreateChronicle(t, r, name, group)
		if _, err := r.CreateView(usageDef("v"+name, c), view.StoreBTree, pred.True(), nil); err != nil {
			t.Fatal(err)
		}
		home := r.ShardOfGroup(group)
		if _, ok := r.Engine(home).View("v" + name); !ok {
			t.Errorf("view v%s not on home shard %d of group %s", name, home, group)
		}
	}
	ghost, err := chronicle.NewGroup("ghostgrp").NewChronicle("ghost", callsSchema(), chronicle.RetainAll)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateView(usageDef("orphan", ghost), view.StoreHash, pred.True(), nil); err == nil || !strings.Contains(err.Error(), "unknown chronicle") {
		t.Errorf("view over unregistered chronicle: err = %v", err)
	}
}

func TestAppendEachAndBatch(t *testing.T) {
	r := newRouter(t, 2)
	mustCreateChronicle(t, r, "calls", "telecom")
	mustCreateChronicle(t, r, "payments", "telecom")
	first, last, err := r.AppendEach("calls", []value.Tuple{
		{value.Str("a"), value.Int(1)},
		{value.Str("b"), value.Int(2)},
		{value.Str("c"), value.Int(3)},
	})
	if err != nil || first != 0 || last != 2 {
		t.Fatalf("AppendEach = %d..%d, %v", first, last, err)
	}
	sn, err := r.AppendBatch([]engine.MutationPart{
		{Chronicle: "calls", Tuples: []value.Tuple{{value.Str("d"), value.Int(4)}}},
		{Chronicle: "payments", Tuples: []value.Tuple{{value.Str("d"), value.Int(9)}}},
	})
	if err != nil || sn != 3 {
		t.Fatalf("AppendBatch = %d, %v", sn, err)
	}
	rows, err := r.ChronicleRows("calls")
	if err != nil || len(rows) != 4 {
		t.Fatalf("ChronicleRows = %d rows, %v", len(rows), err)
	}
}

func TestRouterClose(t *testing.T) {
	r := newRouter(t, 2)
	mustCreateChronicle(t, r, "calls", "telecom")
	r.Close()
	r.Close() // idempotent
	if _, err := r.Append("calls", []value.Tuple{{value.Str("a"), value.Int(1)}}); err == nil {
		t.Error("append after Close succeeded")
	}
	// Reads still work.
	if _, err := r.ChronicleRows("calls"); err != nil {
		t.Errorf("read after Close: %v", err)
	}
}

// TestConcurrentStress drives disjoint chronicle groups from concurrent
// goroutines while another goroutine interleaves proactive relation
// updates, then checks every temporal-join view against the AsOf reference
// evaluation. Run under -race this exercises the single-writer queues, the
// shared LSN allocator, and the epoch barrier at once; any divergence
// means the barrier failed to order a relation update against appends.
func TestConcurrentStress(t *testing.T) {
	const (
		groups    = 8
		perGroup  = 300
		relOps    = 200
		numShards = 4
	)
	r := newRouter(t, numShards)
	rel, err := r.CreateRelation("customers", custSchema(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	_ = rel
	states := []string{"nj", "ny", "ca", "tx", "wa"}
	for a := 0; a < 16; a++ {
		if err := r.Upsert("customers", value.Tuple{value.Str(acct(a)), value.Str("nj")}); err != nil {
			t.Fatal(err)
		}
	}

	views := make([]string, groups)
	for g := 0; g < groups; g++ {
		c := mustCreateChronicle(t, r, fmt.Sprintf("calls%d", g), fmt.Sprintf("grp%d", g))
		jr, err := algebra.NewJoinRel(algebra.NewScan(c), rel, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		def := view.Def{
			Name:      fmt.Sprintf("by_state%d", g),
			Expr:      jr,
			Mode:      view.SummarizeGroupBy,
			GroupCols: []int{3}, // state
			Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}},
		}
		if _, err := r.CreateView(def, view.StoreBTree, pred.True(), nil); err != nil {
			t.Fatal(err)
		}
		views[g] = def.Name
	}

	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			name := fmt.Sprintf("calls%d", g)
			for i := 0; i < perGroup; i++ {
				tup := value.Tuple{value.Str(acct(rng.Intn(16))), value.Int(int64(rng.Intn(60)))}
				if i%10 == 0 {
					// Bulk path: several single-tuple transactions at once.
					bulk := []value.Tuple{tup, {value.Str(acct(rng.Intn(16))), value.Int(1)}}
					if _, _, err := r.AppendEach(name, bulk); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if _, err := r.Append(name, []value.Tuple{tup}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < relOps; i++ {
			a := acct(rng.Intn(16))
			if i%25 == 24 {
				// Occasionally drop a customer entirely, then restore it:
				// appends in between must not join.
				if _, err := r.DeleteKey("customers", value.Tuple{value.Str(a)}); err != nil {
					t.Error(err)
					return
				}
				continue
			}
			st := states[rng.Intn(len(states))]
			if err := r.Upsert("customers", value.Tuple{value.Str(a), value.Str(st)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	for _, name := range views {
		v, ok := r.View(name)
		if !ok {
			t.Fatalf("view %s missing", name)
		}
		want, err := v.Recompute()
		if err != nil {
			t.Fatalf("recompute %s: %v", name, err)
		}
		if d := multisetDiff(v.Rows(), want); d != 0 {
			t.Errorf("view %s diverges from AsOf reference in %d row(s)", name, d)
		}
	}
	st := r.Stats()
	wantAppends := int64(groups * perGroup) // bulk rounds count one transaction per tuple
	if st.Appends < wantAppends {
		t.Errorf("Stats().Appends = %d, want ≥ %d", st.Appends, wantAppends)
	}
	if st.RelationUpdates == 0 {
		t.Error("Stats().RelationUpdates = 0")
	}
	if r.MaintenanceLatency().Count == 0 {
		t.Error("merged maintenance histogram is empty")
	}
}

// TestViewScanMerged checks that the scatter/gather merged scan yields one
// globally key-ordered stream over views homed on different shards, with
// range bounds and early stop honored.
func TestViewScanMerged(t *testing.T) {
	const groups = 6
	r := newRouter(t, 4)
	var names []string
	total := 0
	for g := 0; g < groups; g++ {
		c := mustCreateChronicle(t, r, fmt.Sprintf("calls%d", g), fmt.Sprintf("grp%d", g))
		name := fmt.Sprintf("usage%d", g)
		if _, err := r.CreateView(usageDef(name, c), view.StoreBTree, pred.True(), nil); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		// Each view gets its own slice of accounts so merged output
		// interleaves across shards.
		for i := 0; i < 10; i++ {
			a := acct(g + groups*i)
			if _, err := r.Append(c.Name(), []value.Tuple{{value.Str(a), value.Int(int64(i))}}); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}

	var got []MergedRow
	if err := r.ViewScanMerged(names, func(m MergedRow) bool {
		got = append(got, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("merged scan returned %d rows, want %d", len(got), total)
	}
	for i := 1; i < len(got); i++ {
		prev, cur := got[i-1].Row[0].AsString(), got[i].Row[0].AsString()
		if prev > cur {
			t.Fatalf("merged scan out of order at %d: %q after %q", i, cur, prev)
		}
	}

	// Range bounds: [acct010, acct020) under string ordering.
	lo, hi := value.Tuple{value.Str(acct(10))}, value.Tuple{value.Str(acct(20))}
	var ranged []MergedRow
	if err := r.ViewScanRangeMerged(names, lo, hi, func(m MergedRow) bool {
		ranged = append(ranged, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ranged) != 10 {
		t.Fatalf("ranged merged scan returned %d rows, want 10", len(ranged))
	}
	for _, m := range ranged {
		a := m.Row[0].AsString()
		if a < acct(10) || a >= acct(20) {
			t.Errorf("row %q outside [%s, %s)", a, acct(10), acct(20))
		}
	}

	// Early stop.
	seen := 0
	if err := r.ViewScanMerged(names, func(MergedRow) bool {
		seen++
		return seen < 7
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Errorf("early-stopped merged scan visited %d rows, want 7", seen)
	}

	// Unknown view name fails whole scan.
	if err := r.ViewScanMerged([]string{"usage0", "nope"}, func(MergedRow) bool { return true }); err == nil {
		t.Error("merged scan over unknown view succeeded")
	}

	// The scans above flowed through the shard engines' read counters, and
	// B-tree views publish snapshots the staleness gauge can see.
	if rs := r.ReadStats(); rs.Scans == 0 {
		t.Error("ReadStats().Scans = 0 after merged scans")
	}
	if r.OldestSnapshotUnixNano() == 0 {
		t.Error("OldestSnapshotUnixNano() = 0 with live B-tree views")
	}
}

func acct(i int) string { return fmt.Sprintf("acct%03d", i) }

func multisetDiff(a, b []value.Tuple) int {
	counts := map[string]int{}
	for _, t := range a {
		counts[t.FullKey()]++
	}
	for _, t := range b {
		counts[t.FullKey()]--
	}
	n := 0
	for _, c := range counts {
		if c != 0 {
			n++
		}
	}
	return n
}
