// Package fault abstracts the filesystem operations the durability stack
// performs, so the same WAL / checkpoint / recovery code can run against
// the real OS or against a simulated disk that injects the failures a
// transaction-recording system must survive: power cuts at any write
// operation (with unsynced bytes dropped and optionally a torn final
// write), fsync errors that poison a file (the "fsyncgate" semantics —
// once fsync fails, nothing later written to that file may be trusted),
// and disk-full conditions.
//
// The crash-torture harness in the root package enumerates every write
// operation of a scripted workload, crashes there, reopens, and checks
// the recovery invariants; see Disk for the simulation model.
package fault

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
)

// File is the handle surface the durability stack needs. *os.File
// implements it; Disk supplies a simulated version.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem surface the durability stack needs. Every
// operation mirrors its os counterpart; SyncDir fsyncs a directory so
// renames and creations inside it are durable.
type FS interface {
	// OpenFile opens path with os-style flags (write paths).
	OpenFile(path string, flag int, perm iofs.FileMode) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// CreateTemp creates a temp file in dir (pattern as in os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks path.
	Remove(path string) error
	// Stat stats path.
	Stat(path string) (iofs.FileInfo, error)
	// MkdirAll creates path and parents.
	MkdirAll(path string, perm iofs.FileMode) error
	// SyncDir fsyncs the directory at path.
	SyncDir(path string) error
	// ReadDir lists the names of the entries in the directory at path, in
	// lexical order. Recovery uses it to sweep orphan files a crash left
	// between creating a segment (or checkpoint) and the manifest flip
	// that would have referenced it.
	ReadDir(path string) ([]string, error)
}

// OS is the passthrough implementation backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(path string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm.Perm())
}

func (osFS) Open(path string) (File, error) { return os.Open(path) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Stat(path string) (iofs.FileInfo, error) { return os.Stat(path) }

func (osFS) MkdirAll(path string, perm iofs.FileMode) error {
	return os.MkdirAll(path, perm.Perm())
}

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fault: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fault: sync dir: %w", err)
	}
	return nil
}
