package fault

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Network-fault seam. The disk seam (FS/Disk) let the crash-torture
// harness prove the storage side of durability; this file is the same idea
// for the wire: a probabilistic fault model (NetChaos) driving an
// http.RoundTripper wrapper (ChaosTransport) and a TCP proxy (Proxy) that
// inject the failures real networks produce — latency, requests that never
// arrive, responses that are lost after the server applied the write,
// duplicated deliveries, and connections reset mid-response-body. The
// network-torture harness (E18) runs retrying clients through both layers
// and asserts exactly-once ingestion totals.

// NetChaos is a seeded probabilistic network-fault model. Probabilities
// are per attempt; the zero value injects nothing. One NetChaos may drive
// any number of transports and proxies concurrently.
type NetChaos struct {
	mu  sync.Mutex
	rnd *rand.Rand

	// DropRequest is the probability an attempt fails before the request
	// reaches the server (a dial/connect failure: the server never saw it).
	DropRequest float64
	// DropResponse is the probability the response is lost after the server
	// fully processed the request — the dangerous failure for ingestion,
	// because the client cannot tell it from DropRequest.
	DropResponse float64
	// Duplicate is the probability the request is delivered twice (the
	// network-level duplicate a dedup table must absorb).
	Duplicate float64
	// Latency is added to every attempt before any bytes move.
	Latency time.Duration

	// Proxy connection-level faults.
	// DropConn is the probability an accepted proxy connection is closed
	// before forwarding anything.
	DropConn float64
	// ResetProb is the probability the proxy resets the server→client
	// stream after ResetAfter bytes — a response torn mid-body.
	ResetProb  float64
	ResetAfter int

	droppedRequests  atomic.Int64
	droppedResponses atomic.Int64
	duplicates       atomic.Int64
	droppedConns     atomic.Int64
	resets           atomic.Int64
}

// NewNetChaos creates a fault model with a deterministic seed. Fields are
// configured directly before the model is shared with transports/proxies.
func NewNetChaos(seed int64) *NetChaos {
	return &NetChaos{rnd: rand.New(rand.NewSource(seed))}
}

// roll returns true with probability p.
func (c *NetChaos) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	v := c.rnd.Float64()
	c.mu.Unlock()
	return v < p
}

// NetChaosCounts is a snapshot of the injected-fault counters.
type NetChaosCounts struct {
	DroppedRequests  int64 // attempts failed before reaching the server
	DroppedResponses int64 // responses lost after the server applied
	Duplicates       int64 // requests delivered twice
	DroppedConns     int64 // proxy connections closed on accept
	Resets           int64 // proxy streams reset mid-response
}

// Counts reports how many of each fault were injected so far.
func (c *NetChaos) Counts() NetChaosCounts {
	return NetChaosCounts{
		DroppedRequests:  c.droppedRequests.Load(),
		DroppedResponses: c.droppedResponses.Load(),
		Duplicates:       c.duplicates.Load(),
		DroppedConns:     c.droppedConns.Load(),
		Resets:           c.resets.Load(),
	}
}

// dialDropError marks a fault injected before the request left the client:
// the server cannot have seen the request, so any retry policy may safely
// resend it. It unwraps to a *net.OpError with Op "dial" — the same shape
// a real connect failure has — so callers that classify transport errors
// need no fault-package special case.
type dialDropError struct{ op *net.OpError }

func (e *dialDropError) Error() string { return e.op.Error() }
func (e *dialDropError) Unwrap() error { return e.op }

func injectedNetErr(op string) error {
	oe := &net.OpError{Op: op, Net: "tcp", Err: ErrInjected}
	if op == "dial" {
		return &dialDropError{op: oe}
	}
	return oe
}

// ChaosTransport wraps an http.RoundTripper with the NetChaos fault model.
// Request drops surface as dial errors (server untouched); response drops
// let the base transport complete the round trip — the server applies the
// request — then discard the response and surface a read error, which is
// exactly the ambiguity a resilient client must resolve with idempotent
// retries. Duplicates deliver the request twice and return the second
// response.
type ChaosTransport struct {
	Chaos *NetChaos
	Base  http.RoundTripper
}

func (t *ChaosTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c := t.Chaos
	if c.Latency > 0 {
		select {
		case <-time.After(c.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if c.roll(c.DropRequest) {
		c.droppedRequests.Add(1)
		return nil, injectedNetErr("dial")
	}
	if c.roll(c.Duplicate) && req.GetBody != nil {
		// First delivery: the server applies it, the "network" eats the
		// response. The second delivery below produces the response the
		// client actually sees.
		if dup, err := cloneRequest(req); err == nil {
			if resp, err := t.base().RoundTrip(dup); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				c.duplicates.Add(1)
			}
		}
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if c.roll(c.DropResponse) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		c.droppedResponses.Add(1)
		return nil, injectedNetErr("read")
	}
	return resp, nil
}

// cloneRequest copies a request including a replayable body.
func cloneRequest(req *http.Request) (*http.Request, error) {
	dup := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		dup.Body = body
	}
	return dup, nil
}

// Proxy is a chaos TCP proxy: it forwards accepted connections to a
// retargetable backend, injecting NetChaos connection faults — latency,
// connections dropped on accept, and server→client streams reset
// mid-response-body. SetTarget repoints it at a new backend address, which
// is how the torture harness fails clients over to a reopened server
// without changing the address they dial.
type Proxy struct {
	chaos  *NetChaos
	lis    net.Listener
	target atomic.Value // string
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a loopback ephemeral port forwarding to
// target. Close must be called to release it.
func NewProxy(target string, chaos *NetChaos) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fault: proxy listen: %w", err)
	}
	p := &Proxy{chaos: chaos, lis: lis}
	p.target.Store(target)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// SetTarget repoints the proxy at a new backend; existing connections are
// unaffected, new connections dial the new target.
func (p *Proxy) SetTarget(addr string) { p.target.Store(addr) }

// Close stops accepting and waits for the accept loop; in-flight
// connection goroutines drain on their own.
func (p *Proxy) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.lis.Close()
		p.wg.Wait()
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return // listener closed
		}
		go p.serve(conn)
	}
}

func (p *Proxy) serve(client net.Conn) {
	c := p.chaos
	if c.roll(c.DropConn) {
		c.droppedConns.Add(1)
		client.Close()
		return
	}
	if c.Latency > 0 {
		time.Sleep(c.Latency)
	}
	server, err := net.Dial("tcp", p.target.Load().(string))
	if err != nil {
		client.Close()
		return
	}
	done := make(chan struct{}, 2)
	// client → server: forward verbatim.
	go func() {
		io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// server → client: possibly reset mid-response-body.
	go func() {
		if c.roll(c.ResetProb) {
			limit := int64(c.ResetAfter)
			if limit <= 0 {
				limit = 64
			}
			io.CopyN(client, server, limit)
			if tc, ok := client.(*net.TCPConn); ok {
				// SO_LINGER 0 turns the close into an RST: the client sees
				// a reset mid-body rather than a clean EOF.
				tc.SetLinger(0)
			}
			c.resets.Add(1)
			client.Close()
			server.Close()
			done <- struct{}{}
			return
		}
		io.Copy(client, server)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
	client.Close()
	server.Close()
}
