package fault

import (
	"errors"
	"io"
	"os"
	"testing"
)

func writeString(t *testing.T, f File, s string) {
	t.Helper()
	if _, err := f.Write([]byte(s)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, fs FS, path string) string {
	t.Helper()
	b, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

func TestDiskSyncDurability(t *testing.T) {
	d := NewDisk()
	if err := d.MkdirAll("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := d.OpenFile("/data/a", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "hello ")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.SyncDir("/data"); err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "world") // never synced

	// Crash immediately: power off at the next mutating op.
	d.SetCrashAt(d.Ops())
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	d.Heal()
	if got := readAll(t, d, "/data/a"); got != "hello " {
		t.Fatalf("after crash: %q, want %q", got, "hello ")
	}
	// The pre-crash handle is dead even after healing.
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle: want ErrCrashed, got %v", err)
	}
}

func TestDiskDirEntryDurability(t *testing.T) {
	d := NewDisk()
	d.MkdirAll("/data", 0o755)
	f, _ := d.OpenFile("/data/a", os.O_CREATE|os.O_WRONLY, 0o644)
	writeString(t, f, "abc")
	f.Sync() // file content durable, but the dir entry is not

	d.SetCrashAt(d.Ops())
	d.SyncDir("/data") // crashes here, before the entry persists
	d.Heal()
	if _, err := d.ReadFile("/data/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file should have vanished with its dir entry, got %v", err)
	}
}

func TestDiskRenameAtomicity(t *testing.T) {
	d := NewDisk()
	d.MkdirAll("/data", 0o755)

	// Base file, fully durable.
	f, _ := d.OpenFile("/data/ckpt", os.O_CREATE|os.O_WRONLY, 0o644)
	writeString(t, f, "old")
	f.Sync()
	d.SyncDir("/data")

	// Replacement via temp + rename, crash before the dir sync.
	tmp, err := d.CreateTemp("/data", "ckpt-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, tmp, "new")
	tmp.Sync()
	if err := d.Rename(tmp.Name(), "/data/ckpt"); err != nil {
		t.Fatal(err)
	}
	d.SetCrashAt(d.Ops())
	if err := d.SyncDir("/data"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	d.Heal()
	// Without the dir sync the rename never became durable: old survives.
	if got := readAll(t, d, "/data/ckpt"); got != "old" {
		t.Fatalf("after crash: %q, want %q", got, "old")
	}

	// Same sequence, dir sync completes: new survives the next crash.
	tmp2, _ := d.CreateTemp("/data", "ckpt-*.tmp")
	writeString(t, tmp2, "new")
	tmp2.Sync()
	d.Rename(tmp2.Name(), "/data/ckpt")
	d.SyncDir("/data")
	d.SetCrashAt(d.Ops())
	f2, _ := d.OpenFile("/data/other", os.O_CREATE|os.O_WRONLY, 0o644)
	_ = f2
	d.Heal()
	if got := readAll(t, d, "/data/ckpt"); got != "new" {
		t.Fatalf("after durable rename: %q, want %q", got, "new")
	}
}

func TestDiskTornWrite(t *testing.T) {
	d := NewDisk()
	d.SetTorn(true)
	d.MkdirAll("/data", 0o755)
	f, _ := d.OpenFile("/data/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	writeString(t, f, "AAAA")
	f.Sync()
	d.SyncDir("/data")

	d.SetCrashAt(d.Ops())
	if _, err := f.Write([]byte("BBBBBBBB")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	d.Heal()
	got := readAll(t, d, "/data/log")
	if got != "AAAABBBB" {
		t.Fatalf("torn write: %q, want synced prefix + half the frame (%q)", got, "AAAABBBB")
	}
}

func TestDiskFsyncgate(t *testing.T) {
	d := NewDisk()
	d.MkdirAll("/data", 0o755)
	f, _ := d.OpenFile("/data/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	writeString(t, f, "abc")
	d.FailNthSync(0)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync error, got %v", err)
	}
	// Poisoned: every later write and sync fails.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("poisoned write: want ErrInjected, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("poisoned sync: want ErrInjected, got %v", err)
	}
}

func TestDiskFull(t *testing.T) {
	d := NewDisk()
	d.MkdirAll("/data", 0o755)
	d.SetCapacity(10)
	f, _ := d.OpenFile("/data/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("within capacity: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("want ErrDiskFull, got %v", err)
	}
	if n != 2 {
		t.Fatalf("partial write length = %d, want 2", n)
	}
	f.Sync()
	if got := readAll(t, d, "/data/log"); got != "12345678ab" {
		t.Fatalf("content %q", got)
	}
}

func TestDiskInjectedWriteError(t *testing.T) {
	d := NewDisk()
	d.MkdirAll("/data", 0o755)
	f, _ := d.OpenFile("/data/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	d.FailNthWrite(1)
	writeString(t, f, "ok")
	n, err := f.Write([]byte("abcd"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 2 {
		t.Fatalf("partial write length = %d, want 2", n)
	}
}

func TestDiskTruncateVolatileUntilSync(t *testing.T) {
	d := NewDisk()
	d.MkdirAll("/data", 0o755)
	f, _ := d.OpenFile("/data/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	writeString(t, f, "payload")
	f.Sync()
	d.SyncDir("/data")

	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	d.SetCrashAt(d.Ops())
	f.Sync() // crashes before the truncation becomes durable
	d.Heal()
	if got := readAll(t, d, "/data/log"); got != "payload" {
		t.Fatalf("truncate leaked to durable state: %q", got)
	}
}

func TestDiskReadSeek(t *testing.T) {
	d := NewDisk()
	d.MkdirAll("/data", 0o755)
	f, _ := d.OpenFile("/data/a", os.O_CREATE|os.O_WRONLY, 0o644)
	writeString(t, f, "0123456789")
	f.Close()

	r, err := d.Open("/data/a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(r, buf); err != nil || string(buf) != "0123" {
		t.Fatalf("read %q err %v", buf, err)
	}
	if _, err := r.Seek(8, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	n, err := r.Read(buf)
	if err != nil || string(buf[:n]) != "89" {
		t.Fatalf("read after seek: %q err %v", buf[:n], err)
	}
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestDiskCrashPointEnumerationDeterminism(t *testing.T) {
	run := func(d *Disk) int {
		d.MkdirAll("/data", 0o755)
		f, err := d.OpenFile("/data/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return d.Ops()
		}
		for i := 0; i < 3; i++ {
			if _, err := f.Write([]byte("rec")); err != nil {
				return d.Ops()
			}
			if err := f.Sync(); err != nil {
				return d.Ops()
			}
		}
		d.SyncDir("/data")
		return d.Ops()
	}
	clean := NewDisk()
	total := run(clean)
	if total < 8 {
		t.Fatalf("expected >= 8 mutating ops, got %d", total)
	}
	// Crashing at op i always stops the workload with exactly i ops done.
	for i := 0; i < total; i++ {
		d := NewDisk()
		d.SetCrashAt(i)
		if got := run(d); got != i {
			t.Fatalf("crash at %d: %d ops completed", i, got)
		}
		if !d.Crashed() {
			t.Fatalf("crash at %d did not fire", i)
		}
	}
}
