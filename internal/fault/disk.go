package fault

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// The injectable failures.
var (
	// ErrCrashed is returned by every operation after a simulated power
	// cut until Heal is called (and forever by handles opened before it).
	ErrCrashed = errors.New("fault: simulated power cut")
	// ErrDiskFull is returned by writes once the configured capacity is
	// exhausted. The write may be partial, as on a real disk.
	ErrDiskFull = errors.New("fault: disk full")
	// ErrInjected is the base of injected write/sync errors.
	ErrInjected = errors.New("fault: injected I/O error")
)

// Disk is a simulated disk with power-cut semantics and fault injection.
//
// Model: every file holds two byte images — the volatile content (what
// the running process reads back) and the durable content (what survives
// a power cut). Write and Truncate change only the volatile image; Sync
// copies volatile to durable. Directory entries behave the same way:
// creations, renames, and removals are volatile until SyncDir makes them
// durable, exactly the contract POSIX gives a database. A crash reverts
// every namespace entry and every file to its durable image and kills
// all open handles; Heal then lets the "next process" reopen the
// directory and recover.
//
// Mutating operations (Write, Sync, Truncate, Rename, Remove, SyncDir,
// and file creation) are counted; SetCrashAt(n) cuts power in place of
// the nth one, which is what lets the torture harness enumerate every
// crash point of a workload. With torn writes enabled, a crash landing
// on an append-shaped Write persists a prefix of that write — the torn
// final frame a real log must tolerate.
//
// Sync failures follow the fsyncgate rule: once a file's fsync fails,
// the file is poisoned and every later Write or Sync on it fails too —
// the page cache state is unknowable, so nothing after the failure may
// be trusted.
type Disk struct {
	mu      sync.Mutex
	files   map[string]*node // volatile namespace: path -> inode
	durable map[string]*node // durable namespace (dir-entry durability)
	dirs    map[string]bool

	ops     int // mutating operations performed
	writes  int // Write calls performed
	syncs   int // Sync calls performed
	epoch   int // bumped on crash; stale handles are dead
	crashed bool

	crashAt    int // cut power in place of this mutating op (-1 = off)
	torn       bool
	writeErrAt int // fail this Write call (-1 = off)
	syncErrAt  int // fail this Sync call, poisoning the file (-1 = off)
	capacity   int64
	written    int64
	tmpSeq     int
}

// node is one inode.
type node struct {
	name     string
	durable  []byte
	volatile []byte
	poisoned bool
}

// NewDisk returns an empty simulated disk with no faults armed.
func NewDisk() *Disk {
	return &Disk{
		files:      make(map[string]*node),
		durable:    make(map[string]*node),
		dirs:       make(map[string]bool),
		crashAt:    -1,
		writeErrAt: -1,
		syncErrAt:  -1,
	}
}

// SetCrashAt arms a power cut in place of mutating operation n (0-based,
// counted from NewDisk). Negative disarms.
func (d *Disk) SetCrashAt(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAt = n
}

// SetTorn controls whether a crash landing on an append-shaped Write
// persists a torn prefix of that write.
func (d *Disk) SetTorn(torn bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.torn = torn
}

// FailNthWrite makes Write call n (0-based) fail after a partial write.
func (d *Disk) FailNthWrite(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeErrAt = n
}

// FailNthSync makes Sync call n (0-based) fail and poisons the file.
func (d *Disk) FailNthSync(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncErrAt = n
}

// SetCapacity bounds the total bytes accepted by Write across all files;
// 0 means unlimited. Writes past the bound are partial and return
// ErrDiskFull.
func (d *Disk) SetCapacity(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.capacity = bytes
}

// Ops reports how many mutating operations have been performed — a clean
// run's count is the crash-point space the torture harness enumerates.
func (d *Disk) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Syncs reports how many Sync calls have been performed, for aiming
// FailNthSync at "the next sync from here".
func (d *Disk) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Writes reports how many Write calls have been performed, for aiming
// FailNthWrite at "the next write from here".
func (d *Disk) Writes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// BytesWritten reports the total bytes accepted by Write across all
// files, for aiming SetCapacity at "full from here".
func (d *Disk) BytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}

// Crashed reports whether the simulated power is off.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// PowerCut cuts power immediately: unsynced state is lost and every open
// handle dies. Combine with Heal to model a stop-the-world restart.
func (d *Disk) PowerCut() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashNow()
}

// Heal turns the power back on and disarms the crash trigger: durable
// state is what the "next process" sees when it reopens the directory.
// Handles opened before the crash stay dead.
func (d *Disk) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.crashAt = -1
}

// crashNow cuts power: the namespace and every file revert to their
// durable images, and all open handles die. Callers hold d.mu.
func (d *Disk) crashNow() {
	d.crashed = true
	d.epoch++
	d.files = make(map[string]*node, len(d.durable))
	for p, n := range d.durable {
		d.files[p] = n
	}
	for _, n := range d.files {
		n.volatile = append([]byte(nil), n.durable...)
	}
}

// beforeMutate counts one mutating operation and fires an armed crash in
// its place. Callers hold d.mu.
func (d *Disk) beforeMutate() error {
	if d.crashed {
		return ErrCrashed
	}
	if d.crashAt >= 0 && d.ops == d.crashAt {
		d.crashNow()
		return ErrCrashed
	}
	d.ops++
	return nil
}

func notExist(op, path string) error {
	return &iofs.PathError{Op: op, Path: path, Err: iofs.ErrNotExist}
}

// --- FS implementation ---------------------------------------------------

// OpenFile opens (creating if flagged) path for writing.
func (d *Disk) OpenFile(path string, flag int, perm iofs.FileMode) (File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	n, ok := d.files[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", path)
		}
		if err := d.beforeMutate(); err != nil {
			return nil, err
		}
		n = &node{name: path}
		d.files[path] = n
	}
	f := &file{d: d, n: n, name: path, epoch: d.epoch, append: flag&os.O_APPEND != 0}
	if flag&os.O_APPEND == 0 {
		f.off = 0
	}
	return f, nil
}

// Open opens path read-only.
func (d *Disk) Open(path string) (File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	n, ok := d.files[path]
	if !ok {
		return nil, notExist("open", path)
	}
	return &file{d: d, n: n, name: path, epoch: d.epoch}, nil
}

// CreateTemp creates a deterministically named temp file in dir.
func (d *Disk) CreateTemp(dir, pattern string) (File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	if err := d.beforeMutate(); err != nil {
		return nil, err
	}
	d.tmpSeq++
	suffix := fmt.Sprintf("%06d", d.tmpSeq)
	base := pattern
	if strings.Contains(pattern, "*") {
		base = strings.Replace(pattern, "*", suffix, 1)
	} else {
		base = pattern + suffix
	}
	path := filepath.Join(dir, base)
	n := &node{name: path}
	d.files[path] = n
	return &file{d: d, n: n, name: path, epoch: d.epoch}, nil
}

// ReadFile returns a copy of path's volatile content.
func (d *Disk) ReadFile(path string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	n, ok := d.files[path]
	if !ok {
		return nil, notExist("open", path)
	}
	return append([]byte(nil), n.volatile...), nil
}

// Rename moves the directory entry (volatile until SyncDir).
func (d *Disk) Rename(oldpath, newpath string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	n, ok := d.files[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	if err := d.beforeMutate(); err != nil {
		return err
	}
	delete(d.files, oldpath)
	d.files[newpath] = n
	return nil
}

// Remove unlinks path (volatile until SyncDir).
func (d *Disk) Remove(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if _, ok := d.files[path]; !ok {
		return notExist("remove", path)
	}
	if err := d.beforeMutate(); err != nil {
		return err
	}
	delete(d.files, path)
	return nil
}

// Stat stats path.
func (d *Disk) Stat(path string) (iofs.FileInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	if n, ok := d.files[path]; ok {
		return fileInfo{name: filepath.Base(path), size: int64(len(n.volatile))}, nil
	}
	if d.dirs[path] {
		return fileInfo{name: filepath.Base(path), dir: true}, nil
	}
	return nil, notExist("stat", path)
}

// ReadDir lists the volatile namespace's entries under dir, sorted.
func (d *Disk) ReadDir(dir string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	var names []string
	for p := range d.files {
		if filepath.Dir(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll records the directory. Directory creation is durable
// immediately — the harness only ever uses one data directory, created
// before any interesting crash point.
func (d *Disk) MkdirAll(path string, perm iofs.FileMode) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	for p := path; p != "/" && p != "." && p != ""; p = filepath.Dir(p) {
		d.dirs[p] = true
	}
	return nil
}

// SyncDir makes dir's entries durable: creations and renames persist,
// removals actually unlink.
func (d *Disk) SyncDir(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if err := d.beforeMutate(); err != nil {
		return err
	}
	for p := range d.durable {
		if filepath.Dir(p) == dir {
			if _, live := d.files[p]; !live {
				delete(d.durable, p)
			}
		}
	}
	for p, n := range d.files {
		if filepath.Dir(p) == dir {
			d.durable[p] = n
		}
	}
	return nil
}

// --- file handle ---------------------------------------------------------

type file struct {
	d      *Disk
	n      *node
	name   string
	epoch  int
	off    int64
	append bool
	closed bool
}

// gate rejects operations on dead handles. Callers hold d.mu.
func (f *file) gate() error {
	if f.d.crashed || f.epoch != f.d.epoch {
		return ErrCrashed
	}
	if f.closed {
		return os.ErrClosed
	}
	return nil
}

func (f *file) Name() string { return f.name }

func (f *file) Read(p []byte) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if err := f.gate(); err != nil {
		return 0, err
	}
	if f.off >= int64(len(f.n.volatile)) {
		return 0, io.EOF
	}
	c := copy(p, f.n.volatile[f.off:])
	f.off += int64(c)
	return c, nil
}

func (f *file) Write(p []byte) (int, error) {
	d := f.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := f.gate(); err != nil {
		return 0, err
	}
	if f.n.poisoned {
		return 0, fmt.Errorf("fault: file poisoned by earlier sync failure: %w", ErrInjected)
	}
	if d.crashed {
		return 0, ErrCrashed
	}
	if d.crashAt >= 0 && d.ops == d.crashAt {
		// Power cut in place of this write. With torn writes on and an
		// append-shaped write over fully synced content, a prefix of the
		// data reaches the platter first — the torn final frame.
		if d.torn && f.writeOffset() == int64(len(f.n.durable)) && len(f.n.durable) == len(f.n.volatile) {
			keep := p[:(len(p)+1)/2]
			f.n.durable = append(f.n.durable, keep...)
		}
		d.crashNow()
		return 0, ErrCrashed
	}
	d.ops++
	w := d.writes
	d.writes++
	if d.writeErrAt >= 0 && w == d.writeErrAt {
		part := p[:len(p)/2]
		f.writeAt(part)
		d.written += int64(len(part))
		return len(part), fmt.Errorf("fault: injected write error: %w", ErrInjected)
	}
	if d.capacity > 0 && d.written+int64(len(p)) > d.capacity {
		room := d.capacity - d.written
		if room < 0 {
			room = 0
		}
		part := p[:room]
		f.writeAt(part)
		d.written += int64(len(part))
		return len(part), fmt.Errorf("fault: writing %s: %w", f.name, ErrDiskFull)
	}
	f.writeAt(p)
	d.written += int64(len(p))
	return len(p), nil
}

// writeOffset is where the next write lands. Callers hold d.mu.
func (f *file) writeOffset() int64 {
	if f.append {
		return int64(len(f.n.volatile))
	}
	return f.off
}

// writeAt applies p to the volatile image. Callers hold d.mu.
func (f *file) writeAt(p []byte) {
	off := f.writeOffset()
	end := off + int64(len(p))
	if int64(len(f.n.volatile)) < end {
		nv := make([]byte, end)
		copy(nv, f.n.volatile)
		f.n.volatile = nv
	}
	copy(f.n.volatile[off:end], p)
	f.off = end
}

func (f *file) Sync() error {
	d := f.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := f.gate(); err != nil {
		return err
	}
	if f.n.poisoned {
		return fmt.Errorf("fault: file poisoned by earlier sync failure: %w", ErrInjected)
	}
	if err := d.beforeMutate(); err != nil {
		return err
	}
	s := d.syncs
	d.syncs++
	if d.syncErrAt >= 0 && s == d.syncErrAt {
		f.n.poisoned = true
		return fmt.Errorf("fault: injected sync error on %s: %w", f.name, ErrInjected)
	}
	f.n.durable = append(f.n.durable[:0], f.n.volatile...)
	return nil
}

func (f *file) Truncate(size int64) error {
	d := f.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := f.gate(); err != nil {
		return err
	}
	if err := d.beforeMutate(); err != nil {
		return err
	}
	if size < int64(len(f.n.volatile)) {
		f.n.volatile = f.n.volatile[:size]
	} else {
		for int64(len(f.n.volatile)) < size {
			f.n.volatile = append(f.n.volatile, 0)
		}
	}
	return nil
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if err := f.gate(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.n.volatile)) + offset
	default:
		return 0, fmt.Errorf("fault: bad whence %d", whence)
	}
	if f.off < 0 {
		return 0, fmt.Errorf("fault: negative seek offset")
	}
	return f.off, nil
}

func (f *file) Close() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.d.crashed || f.epoch != f.d.epoch {
		return ErrCrashed
	}
	f.closed = true
	return nil
}

// --- FileInfo ------------------------------------------------------------

type fileInfo struct {
	name string
	size int64
	dir  bool
}

func (fi fileInfo) Name() string { return fi.name }
func (fi fileInfo) Size() int64  { return fi.size }
func (fi fileInfo) Mode() iofs.FileMode {
	if fi.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.dir }
func (fi fileInfo) Sys() any           { return nil }
