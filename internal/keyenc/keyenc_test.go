package keyenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"chronicledb/internal/value"
)

func enc(v value.Value) []byte { return AppendValue(nil, v) }

// sign normalizes a comparison result to -1/0/1.
func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

func sampleValues() []value.Value {
	return []value.Value{
		value.Null(),
		value.Int(math.MinInt32), value.Int(-1), value.Int(0), value.Int(1), value.Int(42), value.Int(math.MaxInt32),
		value.Float(math.Inf(-1)), value.Float(-2.5), value.Float(-0.0), value.Float(0.0),
		value.Float(0.5), value.Float(2.0), value.Float(math.Inf(1)),
		value.Str(""), value.Str("a"), value.Str("a\x00b"), value.Str("a\x00"), value.Str("ab"), value.Str("b"),
		value.Bool(false), value.Bool(true),
		value.Chronon(math.MinInt64), value.Chronon(-5), value.Chronon(0), value.Chronon(77), value.Chronon(math.MaxInt64),
	}
}

// TestOrderAgreesWithCompare is the package's defining property: byte order
// of encodings equals value.Compare for every pair in the sample set.
func TestOrderAgreesWithCompare(t *testing.T) {
	vals := sampleValues()
	for _, a := range vals {
		for _, b := range vals {
			want := sign(value.Compare(a, b))
			got := sign(bytes.Compare(enc(a), enc(b)))
			if got != want {
				t.Errorf("order(%v, %v): encoded %d, Compare %d", a, b, got, want)
			}
		}
	}
}

func TestOrderQuickInts(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := value.Int(int64(a)), value.Int(int64(b))
		return sign(bytes.Compare(enc(va), enc(vb))) == sign(value.Compare(va, vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderQuickFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := value.Float(a), value.Float(b)
		return sign(bytes.Compare(enc(va), enc(vb))) == sign(value.Compare(va, vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderQuickMixedNumeric(t *testing.T) {
	f := func(a int32, b float64) bool {
		if math.IsNaN(b) {
			return true
		}
		va, vb := value.Int(int64(a)), value.Float(b)
		return sign(bytes.Compare(enc(va), enc(vb))) == sign(value.Compare(va, vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderQuickStrings(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := value.Str(a), value.Str(b)
		return sign(bytes.Compare(enc(va), enc(vb))) == sign(value.Compare(va, vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStringPrefixFree: no string encoding is a prefix of another distinct
// string's encoding, so tuple encodings compare lexicographically.
func TestStringPrefixFree(t *testing.T) {
	pairs := [][2]string{
		{"a", "ab"}, {"a\x00", "a"}, {"a\x00", "a\x00b"}, {"", "x"},
	}
	for _, p := range pairs {
		ea, eb := enc(value.Str(p[0])), enc(value.Str(p[1]))
		if bytes.HasPrefix(eb, ea) || bytes.HasPrefix(ea, eb) {
			t.Errorf("encodings of %q and %q are prefix-related", p[0], p[1])
		}
	}
}

func TestTupleOrderAgreesWithCompareTuples(t *testing.T) {
	tuples := []value.Tuple{
		{value.Str("a"), value.Int(1)},
		{value.Str("a"), value.Int(2)},
		{value.Str("a")},
		{value.Str("ab"), value.Int(0)},
		{value.Int(5), value.Str("z")},
		{value.Null(), value.Null()},
	}
	for _, a := range tuples {
		for _, b := range tuples {
			want := sign(value.CompareTuples(a, b))
			got := sign(bytes.Compare(AppendTuple(nil, a), AppendTuple(nil, b)))
			if got != want {
				t.Errorf("tuple order(%v, %v): encoded %d, Compare %d", a, b, got, want)
			}
		}
	}
}

func TestEqualValuesEncodeEqual(t *testing.T) {
	if !bytes.Equal(enc(value.Int(2)), enc(value.Float(2.0))) {
		t.Error("Int(2) and Float(2.0) must encode identically (they Compare equal)")
	}
	if bytes.Equal(enc(value.Int(2)), enc(value.Int(3))) {
		t.Error("distinct values encode equal")
	}
}

func TestKeyHelpers(t *testing.T) {
	tup := value.Tuple{value.Str("a"), value.Int(7), value.Bool(true)}
	if Key(tup, []int{1}) != string(enc(value.Int(7))) {
		t.Error("Key(cols) mismatch")
	}
	if TupleKey(tup) != string(AppendTuple(nil, tup)) {
		t.Error("TupleKey mismatch")
	}
}

func TestNegativeZeroEqualsZero(t *testing.T) {
	if !bytes.Equal(enc(value.Float(0.0)), enc(value.Float(math.Copysign(0, -1)))) {
		t.Error("-0.0 and +0.0 should encode identically (they compare equal)")
	}
}

// TestPrefixRangeSemantics pins the property LookupRange relies on: for
// bounds that are prefixes of the stored tuples, membership of a tuple in
// the encoded byte range [enc(lo), enc(hi)) equals lexicographic tuple
// membership lo ≤ t < hi (with prefix comparison extending shorter bounds).
func TestPrefixRangeSemantics(t *testing.T) {
	tuples := []value.Tuple{
		{value.Str("alpha"), value.Int(1)},
		{value.Str("alpha"), value.Int(2)},
		{value.Str("bravo"), value.Int(0)},
		{value.Str("bravo"), value.Int(9)},
		{value.Str("br"), value.Int(5)},
		{value.Str("charlie"), value.Int(3)},
	}
	bounds := []value.Tuple{
		{value.Str("a")}, {value.Str("alpha")}, {value.Str("alpha"), value.Int(2)},
		{value.Str("b")}, {value.Str("bravo")}, {value.Str("c")}, {value.Str("zz")},
	}
	for _, lo := range bounds {
		for _, hi := range bounds {
			loK, hiK := TupleKey(lo), TupleKey(hi)
			for _, tup := range tuples {
				k := TupleKey(tup)
				inBytes := k >= loK && k < hiK
				inTuples := value.CompareTuples(tup, lo) >= 0 && value.CompareTuples(tup, hi) < 0
				if inBytes != inTuples {
					t.Errorf("range [%v,%v) tuple %v: bytes=%v tuples=%v",
						lo, hi, tup, inBytes, inTuples)
				}
			}
		}
	}
}

func TestSeparator(t *testing.T) {
	cases := []struct{ a, b string }{
		{"apple", "banana"},
		{"app", "apple"},
		{"abc", "abd"},
		{"abczzz", "abd"},
		{"", "a"},
		{"a", "ab"},
		{"aa", "ab"},
	}
	for _, c := range cases {
		s := Separator(nil, []byte(c.a), []byte(c.b))
		if !(bytes.Compare([]byte(c.a), s) < 0 && bytes.Compare(s, []byte(c.b)) <= 0) {
			t.Errorf("Separator(%q, %q) = %q, want a < s <= b", c.a, c.b, s)
		}
		if len(s) > len(c.b) {
			t.Errorf("Separator(%q, %q) = %q longer than b", c.a, c.b, s)
		}
	}
	// Degenerate: a >= b returns b verbatim.
	if s := Separator(nil, []byte("zz"), []byte("a")); !bytes.Equal(s, []byte("a")) {
		t.Errorf("degenerate Separator = %q, want %q", s, "a")
	}
}
