// Package keyenc provides an order-preserving ("memcomparable") binary
// encoding of values and tuples: byte-wise comparison of encodings agrees
// with value.Compare / value.CompareTuples.
//
// The ordered B-tree stores key on this encoding, which is what lets a
// persistent view support ordered scans and range queries over its group
// key — the "what indices should be constructed?" question of Section 5.2.
//
// Layout, per value (tags chosen so cross-kind order matches value.Compare:
// nulls < numerics < strings < bools < times):
//
//	null:    0x01
//	numeric: 0x02 + 8-byte sortable float64 (sign-massaged IEEE bits)
//	string:  0x03 + bytes with 0x00 escaped as 0x00 0xFF + terminator 0x00 0x00
//	bool:    0x04 + 1 byte
//	time:    0x05 + 8-byte sortable int64
//
// Integers and floats share the numeric class and compare numerically,
// exactly as value.Compare does. Like SQLite's numeric affinity, integer
// keys with |v| > 2⁵³ collapse onto their nearest float64 — distinct such
// keys may encode equal. Chronicle group keys are account numbers, names,
// and timestamps in practice; the trade-off buys byte-comparable keys.
package keyenc

import (
	"encoding/binary"
	"math"
	"sync"

	"chronicledb/internal/value"
)

// bufs pools key-encode scratch for callers that cannot keep their own
// grown-once buffer — the concurrent read paths (view lookups and range
// scans run under a shared read lock, so a per-view buffer would race).
var bufs = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// GetBuf returns a pooled scratch buffer of zero length. Pass it back with
// PutBuf when the encoded key is no longer referenced.
func GetBuf() *[]byte {
	b := bufs.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a scratch buffer (grown capacity and all) to the pool.
func PutBuf(b *[]byte) { bufs.Put(b) }

// Kind tags, ordered to match value.Compare's cross-kind ordering.
const (
	tagNull    = 0x01
	tagNumeric = 0x02
	tagString  = 0x03
	tagBool    = 0x04
	tagTime    = 0x05
)

// AppendValue appends the order-preserving encoding of v to dst.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(dst, tagNull)
	case value.KindInt:
		dst = append(dst, tagNumeric)
		return appendSortableFloat(dst, float64(v.AsInt()))
	case value.KindFloat:
		dst = append(dst, tagNumeric)
		return appendSortableFloat(dst, v.AsFloat())
	case value.KindString:
		dst = append(dst, tagString)
		s := v.AsString()
		for i := 0; i < len(s); i++ {
			if s[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, s[i])
			}
		}
		return append(dst, 0x00, 0x00)
	case value.KindBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		return append(dst, tagBool, b)
	case value.KindTime:
		dst = append(dst, tagTime)
		return appendSortableInt(dst, v.AsChronon())
	default:
		return append(dst, 0xFF)
	}
}

// AppendTuple appends the encodings of every value in t. Because each value
// encoding is self-delimiting and prefix-free within its kind, byte-wise
// comparison of tuple encodings is lexicographic tuple comparison.
func AppendTuple(dst []byte, t value.Tuple) []byte {
	for _, v := range t {
		dst = AppendValue(dst, v)
	}
	return dst
}

// AppendCols appends the encodings of t's values at the given columns —
// the allocation-free form of Key for callers holding a reusable buffer.
func AppendCols(dst []byte, t value.Tuple, cols []int) []byte {
	for _, c := range cols {
		dst = AppendValue(dst, t[c])
	}
	return dst
}

// Key renders the values of t at the given columns into a string usable as
// an ordered map key.
func Key(t value.Tuple, cols []int) string {
	return string(AppendCols(nil, t, cols))
}

// TupleKey renders the whole tuple.
func TupleKey(t value.Tuple) string { return string(AppendTuple(nil, t)) }

// appendSortableFloat writes f as 8 bytes whose unsigned byte-wise order is
// the numeric order: positive floats get the sign bit flipped, negative
// floats get all bits inverted. NaN is normalized below -Inf.
func appendSortableFloat(dst []byte, f float64) []byte {
	if f == 0 {
		f = 0 // normalize -0.0, which compares equal to +0.0
	}
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		bits = 0 // sorts below every real value after the transform
	}
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// appendSortableInt writes i as 8 big-endian bytes with the sign bit
// flipped, so unsigned byte order equals signed numeric order.
func appendSortableInt(dst []byte, i int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i)^(1<<63))
	return append(dst, buf[:]...)
}

// Separator returns a short key s with a < s ≤ b (byte-wise), appended to
// dst. It is the shortest prefix of b that still exceeds a, in the spirit
// of an SSTable index separator: blocked view stores use it as the lower
// boundary of a block whose first key is b when the previous block ends at
// a, keeping block indexes small. The result is a comparison key only — a
// proper prefix of an encoding is not itself a decodable encoding. When
// a ≥ b (degenerate input) it returns b whole.
func Separator(dst, a, b []byte) []byte {
	c := 0
	for c < len(a) && c < len(b) && a[c] == b[c] {
		c++
	}
	switch {
	case c == len(b):
		// b is a prefix of a (or equal): no prefix of b exceeds a.
		return append(dst, b...)
	case c == len(a):
		// a is a proper prefix of b: one extra byte breaks the tie.
		return append(dst, b[:c+1]...)
	default:
		// First divergent byte decides; b[c] > a[c] whenever a < b.
		return append(dst, b[:c+1]...)
	}
}
