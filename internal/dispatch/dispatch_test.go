package dispatch

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
)

func newChronicles(t testing.TB) (*chronicle.Group, *chronicle.Chronicle, *chronicle.Chronicle) {
	t.Helper()
	g := chronicle.NewGroup("g")
	schema := value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "amount", Kind: value.KindInt},
	)
	a, err := g.NewChronicle("a", schema, chronicle.RetainNone)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.NewChronicle("b", schema, chronicle.RetainNone)
	if err != nil {
		t.Fatal(err)
	}
	return g, a, b
}

func rowsFor(acct string, amount int64) []chronicle.Row {
	return []chronicle.Row{{SN: 1, Vals: value.Tuple{value.Str(acct), value.Int(amount)}}}
}

func ids(ts []*Target) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	sort.Strings(out)
	return out
}

func TestRegisterValidation(t *testing.T) {
	_, a, _ := newChronicles(t)
	d := New(true)
	if err := d.Register(&Target{Chronicles: []*chronicle.Chronicle{a}}); err == nil {
		t.Error("missing ID accepted")
	}
	if err := d.Register(&Target{ID: "x"}); err == nil {
		t.Error("missing chronicles accepted")
	}
	if err := d.Register(&Target{ID: "x", Chronicles: []*chronicle.Chronicle{a}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(&Target{ID: "x", Chronicles: []*chronicle.Chronicle{a}}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if d.Targets() != 1 {
		t.Errorf("Targets = %d", d.Targets())
	}
}

func TestDependencyFiltering(t *testing.T) {
	_, a, b := newChronicles(t)
	for _, indexed := range []bool{false, true} {
		d := New(indexed)
		d.Register(&Target{ID: "onA", Chronicles: []*chronicle.Chronicle{a}})
		d.Register(&Target{ID: "onB", Chronicles: []*chronicle.Chronicle{b}})
		d.Register(&Target{ID: "onBoth", Chronicles: []*chronicle.Chronicle{a, b}})
		got := ids(d.Affected(a, rowsFor("x", 1), 0))
		if len(got) != 2 || got[0] != "onA" || got[1] != "onBoth" {
			t.Errorf("indexed=%v: Affected(a) = %v", indexed, got)
		}
		got = ids(d.Affected(b, rowsFor("x", 1), 0))
		if len(got) != 2 || got[0] != "onB" || got[1] != "onBoth" {
			t.Errorf("indexed=%v: Affected(b) = %v", indexed, got)
		}
	}
}

func TestEqualityPredicateFiltering(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		_, a, _ := newChronicles(t)
		d := New(indexed)
		for i := 0; i < 10; i++ {
			acct := fmt.Sprintf("acct%d", i)
			d.Register(&Target{
				ID:              "balance_" + acct,
				Chronicles:      []*chronicle.Chronicle{a},
				Filter:          pred.Or(pred.ColConst(0, pred.Eq, value.Str(acct))),
				FilterChronicle: a,
			})
		}
		got := ids(d.Affected(a, rowsFor("acct7", 5), 0))
		if len(got) != 1 || got[0] != "balance_acct7" {
			t.Errorf("indexed=%v: Affected = %v", indexed, got)
		}
		if got := d.Affected(a, rowsFor("stranger", 5), 0); len(got) != 0 {
			t.Errorf("indexed=%v: stranger matched %v", indexed, ids(got))
		}
	}
}

func TestGeneralPredicateFiltering(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		_, a, _ := newChronicles(t)
		d := New(indexed)
		d.Register(&Target{
			ID:              "big",
			Chronicles:      []*chronicle.Chronicle{a},
			Filter:          pred.Or(pred.ColConst(1, pred.Gt, value.Int(100))),
			FilterChronicle: a,
		})
		if got := d.Affected(a, rowsFor("x", 50), 0); len(got) != 0 {
			t.Errorf("indexed=%v: small amount matched", indexed)
		}
		if got := d.Affected(a, rowsFor("x", 500), 0); len(got) != 1 {
			t.Errorf("indexed=%v: big amount missed", indexed)
		}
	}
}

func TestActivePeriodFiltering(t *testing.T) {
	_, a, _ := newChronicles(t)
	d := New(true)
	d.Register(&Target{
		ID:         "january",
		Chronicles: []*chronicle.Chronicle{a},
		ActiveAt:   func(ch int64) bool { return ch >= 100 && ch < 200 },
	})
	if got := d.Affected(a, rowsFor("x", 1), 50); len(got) != 0 {
		t.Error("inactive target dispatched")
	}
	if got := d.Affected(a, rowsFor("x", 1), 150); len(got) != 1 {
		t.Error("active target missed")
	}
}

func TestMultiRowBatchDedup(t *testing.T) {
	_, a, _ := newChronicles(t)
	for _, indexed := range []bool{false, true} {
		d := New(indexed)
		d.Register(&Target{
			ID:              "acct1",
			Chronicles:      []*chronicle.Chronicle{a},
			Filter:          pred.Or(pred.ColConst(0, pred.Eq, value.Str("acct1"))),
			FilterChronicle: a,
		})
		rows := []chronicle.Row{
			{SN: 1, Vals: value.Tuple{value.Str("acct1"), value.Int(1)}},
			{SN: 1, Vals: value.Tuple{value.Str("acct1"), value.Int(2)}},
		}
		if got := d.Affected(a, rows, 0); len(got) != 1 {
			t.Errorf("indexed=%v: target duplicated: %v", indexed, ids(got))
		}
	}
}

// TestIndexedMatchesLinear: the indexed dispatcher must return exactly the
// same target set as the linear scan for random workloads.
func TestIndexedMatchesLinear(t *testing.T) {
	_, a, b := newChronicles(t)
	linear, indexed := New(false), New(true)
	rng := rand.New(rand.NewSource(11))

	for i := 0; i < 200; i++ {
		tgt := Target{ID: fmt.Sprintf("t%d", i)}
		switch rng.Intn(3) {
		case 0:
			tgt.Chronicles = []*chronicle.Chronicle{a}
		case 1:
			tgt.Chronicles = []*chronicle.Chronicle{b}
		default:
			tgt.Chronicles = []*chronicle.Chronicle{a, b}
		}
		switch rng.Intn(3) {
		case 0: // equality filter
			tgt.Filter = pred.Or(pred.ColConst(0, pred.Eq, value.Str(fmt.Sprintf("acct%d", rng.Intn(20)))))
			tgt.FilterChronicle = tgt.Chronicles[0]
		case 1: // range filter
			tgt.Filter = pred.Or(pred.ColConst(1, pred.Gt, value.Int(int64(rng.Intn(100)))))
			tgt.FilterChronicle = tgt.Chronicles[0]
		}
		if rng.Intn(4) == 0 {
			lo := int64(rng.Intn(1000))
			hi := lo + int64(rng.Intn(1000))
			tgt.ActiveAt = func(ch int64) bool { return ch >= lo && ch < hi }
		}
		t1, t2 := tgt, tgt
		if err := linear.Register(&t1); err != nil {
			t.Fatal(err)
		}
		if err := indexed.Register(&t2); err != nil {
			t.Fatal(err)
		}
	}

	for trial := 0; trial < 500; trial++ {
		c := a
		if rng.Intn(2) == 0 {
			c = b
		}
		rows := rowsFor(fmt.Sprintf("acct%d", rng.Intn(25)), int64(rng.Intn(150)))
		ch := int64(rng.Intn(1200))
		got := ids(indexed.Affected(c, rows, ch))
		want := ids(linear.Affected(c, rows, ch))
		if len(got) != len(want) {
			t.Fatalf("trial %d: indexed %v != linear %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: indexed %v != linear %v", trial, got, want)
			}
		}
	}
	// The index must actually reduce scanning.
	if indexed.Scanned >= linear.Scanned {
		t.Errorf("index did not reduce scans: indexed %d, linear %d", indexed.Scanned, linear.Scanned)
	}
}

func TestUnregister(t *testing.T) {
	_, a, _ := newChronicles(t)
	for _, indexed := range []bool{false, true} {
		d := New(indexed)
		if d.Indexed() != indexed {
			t.Error("Indexed accessor")
		}
		d.Register(&Target{
			ID:              "eq",
			Chronicles:      []*chronicle.Chronicle{a},
			Filter:          pred.Or(pred.ColConst(0, pred.Eq, value.Str("x"))),
			FilterChronicle: a,
		})
		d.Register(&Target{ID: "plain", Chronicles: []*chronicle.Chronicle{a}})
		if d.Targets() != 2 {
			t.Fatalf("Targets = %d", d.Targets())
		}
		if !d.Unregister("eq") {
			t.Error("Unregister(eq) = false")
		}
		if d.Unregister("eq") {
			t.Error("double Unregister = true")
		}
		if d.Unregister("ghost") {
			t.Error("Unregister(ghost) = true")
		}
		got := ids(d.Affected(a, rowsFor("x", 1), 0))
		if len(got) != 1 || got[0] != "plain" {
			t.Errorf("indexed=%v: Affected after unregister = %v", indexed, got)
		}
		if !d.Unregister("plain") {
			t.Error("Unregister(plain) = false")
		}
		if got := d.Affected(a, rowsFor("x", 1), 0); len(got) != 0 {
			t.Errorf("Affected after full unregister = %v", ids(got))
		}
		// The ID is reusable afterwards.
		if err := d.Register(&Target{ID: "eq", Chronicles: []*chronicle.Chronicle{a}}); err != nil {
			t.Errorf("re-register after unregister: %v", err)
		}
	}
}
