// Package dispatch implements Section 5.2 of the chronicle paper:
// identifying the persistent views affected by an update to a chronicle,
// early, "so as not to waste computation resources".
//
// The dispatcher keeps, per chronicle, the set of registered maintenance
// targets. Targets whose defining expression starts with an equality
// selection on a constant (the overwhelmingly common "per-account" shape)
// are placed in a predicate index keyed by (column, constant); an append
// then probes the index with each inserted tuple's value — O(rows + hits)
// instead of O(#views). Targets with general predicates fall back to
// per-target predicate evaluation, and periodic targets are additionally
// filtered by their active period before any maintenance work happens.
package dispatch

import (
	"fmt"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
)

// Target is a maintenance target (typically a persistent view, or one
// periodic-view family). A Target belongs to at most one Dispatcher: the
// dedup stamps below are scoped to a single dispatcher's call sequence.
type Target struct {
	// ID names the target (unique per dispatcher).
	ID string
	// Chronicles are the base chronicles the target depends on.
	Chronicles []*chronicle.Chronicle
	// Filter optionally narrows relevance: a Definition-4.1 predicate over
	// the schema of FilterChronicle such that the target is unaffected by
	// any batch none of whose tuples satisfy it. Use pred.True() (or leave
	// FilterChronicle nil) when no such predicate is known.
	Filter          pred.Predicate
	FilterChronicle *chronicle.Chronicle
	// ActiveAt optionally reports whether the target is active at a given
	// chronon (periodic views are maintained only inside their intervals).
	// nil means always active.
	ActiveAt func(chronon int64) bool

	// seenSeq dedups within one Affected call; stampSeq dedups across
	// Affected calls of one maintenance batch (see Stamp). Both are plain
	// sequence stamps rather than membership maps: comparing an integer per
	// target replaces a map insert on the append hot path. Serialized by the
	// caller along with Affected itself.
	seenSeq  uint64
	stampSeq uint64
}

// Stamp marks the target as claimed for sequence seq and reports whether it
// had already been claimed for that sequence. Callers that gather affected
// targets across several Affected calls (a multi-chronicle batch touches
// one chronicle per call) use a fresh seq per batch to dedup without a
// membership map. Stamp requires the same serialization as Affected.
func (t *Target) Stamp(seq uint64) (already bool) {
	if t.stampSeq == seq {
		return true
	}
	t.stampSeq = seq
	return false
}

// Dispatcher routes appends to affected targets.
type Dispatcher struct {
	indexed bool

	byChronicle map[*chronicle.Chronicle][]*Target
	// eqIndex[c][col][constKey] lists targets whose filter is "col = const"
	// on chronicle c. Only consulted when indexed.
	eqIndex map[*chronicle.Chronicle]map[int]map[string][]*Target
	// unindexed[c] lists targets on c that the equality index cannot serve.
	unindexed map[*chronicle.Chronicle][]*Target

	ids map[string]bool

	// Probes and Scanned instrument E7: how many targets were examined.
	Probes  int64
	Scanned int64

	// Affected scratch, reused across calls: the engine serializes appends,
	// so at most one Affected runs at a time. The returned slice is valid
	// only until the next call.
	outScratch []*Target
	keyScratch []byte
	// callSeq stamps targets emitted by the current Affected call (dedup
	// without a map; see Target.seenSeq).
	callSeq uint64
}

// New creates a dispatcher. indexed selects whether equality filters are
// served by the predicate index (the E7 ablation switch).
func New(indexed bool) *Dispatcher {
	return &Dispatcher{
		indexed:     indexed,
		byChronicle: make(map[*chronicle.Chronicle][]*Target),
		eqIndex:     make(map[*chronicle.Chronicle]map[int]map[string][]*Target),
		unindexed:   make(map[*chronicle.Chronicle][]*Target),
		ids:         make(map[string]bool),
	}
}

// Indexed reports whether the predicate index is in use.
func (d *Dispatcher) Indexed() bool { return d.indexed }

// Register adds a target.
func (d *Dispatcher) Register(t *Target) error {
	if t.ID == "" {
		return fmt.Errorf("dispatch: target needs an ID")
	}
	if d.ids[t.ID] {
		return fmt.Errorf("dispatch: duplicate target %q", t.ID)
	}
	if len(t.Chronicles) == 0 {
		return fmt.Errorf("dispatch: target %q depends on no chronicles", t.ID)
	}
	d.ids[t.ID] = true
	for _, c := range t.Chronicles {
		d.byChronicle[c] = append(d.byChronicle[c], t)
		if d.indexed && c == t.FilterChronicle {
			if col, k, ok := t.Filter.EqualityConstant(); ok {
				cols, exists := d.eqIndex[c]
				if !exists {
					cols = make(map[int]map[string][]*Target)
					d.eqIndex[c] = cols
				}
				byConst, exists := cols[col]
				if !exists {
					byConst = make(map[string][]*Target)
					cols[col] = byConst
				}
				key := value.Tuple{k}.FullKey()
				byConst[key] = append(byConst[key], t)
				continue
			}
		}
		d.unindexed[c] = append(d.unindexed[c], t)
	}
	return nil
}

// Targets returns the number of registered targets.
func (d *Dispatcher) Targets() int { return len(d.ids) }

// Unregister removes the target with the given ID. Removing an unknown ID
// is a no-op that reports false.
func (d *Dispatcher) Unregister(id string) bool {
	if !d.ids[id] {
		return false
	}
	delete(d.ids, id)
	drop := func(list []*Target) []*Target {
		out := list[:0]
		for _, t := range list {
			if t.ID != id {
				out = append(out, t)
			}
		}
		return out
	}
	for c, list := range d.byChronicle {
		d.byChronicle[c] = drop(list)
	}
	for c, list := range d.unindexed {
		d.unindexed[c] = drop(list)
	}
	for _, cols := range d.eqIndex {
		for _, byConst := range cols {
			for k, list := range byConst {
				byConst[k] = drop(list)
				if len(byConst[k]) == 0 {
					delete(byConst, k)
				}
			}
		}
	}
	return true
}

// Affected returns the targets that an append of rows into chronicle c at
// the given chronon may affect, without duplicates. It applies, in order:
// dependency filtering (which chronicle), active-period filtering, and
// selection-predicate filtering. The returned slice is the dispatcher's
// reusable scratch: it is valid only until the next Affected call.
func (d *Dispatcher) Affected(c *chronicle.Chronicle, rows []chronicle.Row, chronon int64) []*Target {
	out := d.outScratch[:0]
	d.callSeq++
	emit := func(t *Target) {
		if t.seenSeq == d.callSeq {
			return
		}
		t.seenSeq = d.callSeq
		if t.ActiveAt != nil && !t.ActiveAt(chronon) {
			return
		}
		out = append(out, t)
	}

	if d.indexed {
		if cols := d.eqIndex[c]; cols != nil {
			for col, byConst := range cols {
				for _, r := range rows {
					d.Probes++
					if col >= len(r.Vals) {
						continue
					}
					// The probe key is built in reusable scratch; the
					// map[string] lookup does not copy the bytes.
					d.keyScratch = value.AppendKey(d.keyScratch[:0], r.Vals[col])
					for _, t := range byConst[string(d.keyScratch)] {
						emit(t)
					}
				}
			}
		}
		for _, t := range d.unindexed[c] {
			d.Scanned++
			if d.matches(t, c, rows) {
				emit(t)
			}
		}
		d.outScratch = out
		return out
	}

	for _, t := range d.byChronicle[c] {
		d.Scanned++
		if d.matches(t, c, rows) {
			emit(t)
		}
	}
	d.outScratch = out
	return out
}

// matches reports whether any row satisfies the target's filter.
func (d *Dispatcher) matches(t *Target, c *chronicle.Chronicle, rows []chronicle.Row) bool {
	if t.FilterChronicle != c || t.Filter.IsTrue() {
		return true
	}
	for _, r := range rows {
		if t.Filter.Eval(r.Vals) {
			return true
		}
	}
	return false
}
