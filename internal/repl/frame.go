// Package repl implements log-shipping replication for a chronicle
// database.
//
// The chronicle model makes this almost free: the database is insert-only
// and every view is a pure function of the totally ordered WAL, so the WAL
// *is* the replication stream. A primary taps its logs for post-fsync
// record payloads, orders them by global LSN (appends across shard logs
// become durable out of LSN order), and fans identical frames out to any
// number of followers; a follower applies them through the same paths
// recovery uses and converges to the primary's exact state — same LSNs,
// same view contents, same dedup table. No retraction machinery, no
// conflict resolution: catch-up from any LSN is pure log replay out of the
// primary's segment set.
//
// Stream wire format: each frame is u32 little-endian payload length, u32
// CRC-32 (IEEE) of the payload, payload — the same envelope as WAL frames
// on disk. The payload's first byte is the frame type:
//
//	0 record:    a wal.EncodeRecord payload, shipped verbatim.
//	1 heartbeat: u64 LE primary durable LSN (the released cursor).
//	2 ddl:       uvarint catalog index, uvarint LSN annotation, then the
//	             statement text to the end of the payload.
//
// DDL never enters the WAL (the catalog file is its durable home), so it
// rides the stream as its own frame type carrying its position in the
// primary's catalog: the follower applies statement i only when it has
// applied exactly i statements, which makes redelivery (catalog tail
// replay after a reconnect) idempotent and detects gaps.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types.
const (
	FrameRecord    byte = 0
	FrameHeartbeat byte = 1
	FrameDDL       byte = 2
)

// maxFrame caps a stream frame payload; a length prefix beyond it is
// corruption, not an allocation request. Matches the WAL replay cap.
const maxFrame = 64 << 20

// AppendRecordFrame appends a type-0 frame carrying a wal-encoded record
// payload to dst.
func AppendRecordFrame(dst, payload []byte) []byte {
	return appendFrame(dst, FrameRecord, payload, nil)
}

// AppendHeartbeatFrame appends a type-1 frame carrying the primary's
// durable LSN cursor to dst.
func AppendHeartbeatFrame(dst []byte, lsn uint64) []byte {
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], lsn)
	return appendFrame(dst, FrameHeartbeat, body[:], nil)
}

// AppendBodyFrame appends a frame of the given type around an
// already-encoded body (the stream handler re-wraps Source frames, whose
// payloads are bodies without the envelope or type byte).
func AppendBodyFrame(dst []byte, typ byte, body []byte) []byte {
	return appendFrame(dst, typ, body, nil)
}

// AppendDDLFrame appends a type-2 frame carrying catalog statement idx
// (0-based position in the primary's catalog), its LSN ordering
// annotation, and the statement text to dst.
func AppendDDLFrame(dst []byte, idx, lsn uint64, stmt string) []byte {
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], idx)
	n += binary.PutUvarint(hdr[n:], lsn)
	return appendFrame(dst, FrameDDL, hdr[:n], []byte(stmt))
}

// appendFrame writes the length/CRC envelope around typ ++ body ++ tail.
func appendFrame(dst []byte, typ byte, body, tail []byte) []byte {
	plen := 1 + len(body) + len(tail)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(plen))
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	crc.Write(tail)
	binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
	dst = append(dst, hdr[:]...)
	dst = append(dst, typ)
	dst = append(dst, body...)
	return append(dst, tail...)
}

// DecodeDDLFrame parses a type-2 frame body (the payload after the type
// byte).
func DecodeDDLFrame(b []byte) (idx, lsn uint64, stmt string, err error) {
	idx, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, "", fmt.Errorf("repl: bad ddl index")
	}
	b = b[sz:]
	lsn, sz = binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, "", fmt.Errorf("repl: bad ddl lsn")
	}
	return idx, lsn, string(b[sz:]), nil
}

// DecodeHeartbeatFrame parses a type-1 frame body.
func DecodeHeartbeatFrame(b []byte) (lsn uint64, err error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("repl: bad heartbeat length %d", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// FrameReader decodes stream frames off a network connection. The payload
// returned by Next is valid only until the following call — it aliases the
// reader's reused buffer.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r for frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 1 << 16)}
}

// Next reads one frame, returning its type and the payload after the type
// byte. io.EOF means a clean end between frames; any mid-frame truncation
// or checksum mismatch is an error (a replication stream, unlike a crash
// tail, has no legitimate torn frames — the follower reconnects).
func (fr *FrameReader) Next() (typ byte, payload []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("repl: torn frame header: %w", err)
		}
		return 0, nil, err
	}
	plen := int(binary.LittleEndian.Uint32(hdr[0:]))
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if plen <= 0 || plen > maxFrame {
		return 0, nil, fmt.Errorf("repl: bad frame length %d", plen)
	}
	if cap(fr.buf) < plen {
		fr.buf = make([]byte, plen)
	}
	fr.buf = fr.buf[:plen]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		return 0, nil, fmt.Errorf("repl: torn frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(fr.buf) != crc {
		return 0, nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	return fr.buf[0], fr.buf[1:], nil
}

// DecodeFrame decodes one whole frame from the front of b, returning the
// frame type, the payload after the type byte (aliasing b), and the bytes
// consumed. It is the allocation-free single-buffer twin of FrameReader,
// used by tests and the fuzzer.
func DecodeFrame(b []byte) (typ byte, payload []byte, n int, err error) {
	if len(b) < 8 {
		return 0, nil, 0, fmt.Errorf("repl: short frame header")
	}
	plen := int(binary.LittleEndian.Uint32(b[0:]))
	crc := binary.LittleEndian.Uint32(b[4:])
	if plen <= 0 || plen > maxFrame {
		return 0, nil, 0, fmt.Errorf("repl: bad frame length %d", plen)
	}
	if len(b) < 8+plen {
		return 0, nil, 0, fmt.Errorf("repl: short frame payload")
	}
	p := b[8 : 8+plen]
	if crc32.ChecksumIEEE(p) != crc {
		return 0, nil, 0, fmt.Errorf("repl: frame checksum mismatch")
	}
	return p[0], p[1:], 8 + plen, nil
}
