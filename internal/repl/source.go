package repl

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Frame is one replication stream item ready for fan-out: an encoded
// payload (wal record bytes for FrameRecord, ddl body for FrameDDL) plus
// its LSN coordinates. Span is 0 for DDL annotations.
type Frame struct {
	Type    byte
	Payload []byte
	LSN     uint64
	Span    uint64
}

// Sub is one follower stream's subscription. StartLSN is the source's
// released cursor at subscribe time: every record frame delivered on C has
// LSN > StartLSN, so the subscriber owes itself a disk catch-up over
// (from, StartLSN] and nothing else. C is closed (after removal from the
// fan-out) if the subscriber falls behind the buffer — the reader then
// re-subscribes and catches up from its last delivered LSN.
type Sub struct {
	C        chan Frame
	StartLSN uint64
}

// staged is a tapped record waiting for its durability notification.
type staged struct {
	seq uint64
	f   Frame
}

// logStage buffers one log's tapped records between append and fsync.
// Appends arrive seq-ascending under the log's own mutex; durability
// notifications release a prefix.
type logStage struct {
	mu   sync.Mutex
	fifo []staged
}

// frameHeap orders durable frames by LSN, records before same-LSN DDL
// annotations (a DDL staged at LSN L follows the record that allocated L).
type frameHeap []Frame

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if h[i].LSN != h[j].LSN {
		return h[i].LSN < h[j].LSN
	}
	return h[i].Span > h[j].Span
}
func (h frameHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x any)        { *h = append(*h, x.(Frame)) }
func (h *frameHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = Frame{}
	*h = old[:n-1]
	return f
}

// FollowerAck is one attached follower's acknowledged LSN.
type FollowerAck struct {
	ID       string `json:"id"`
	AckedLSN uint64 `json:"acked_lsn"`
}

// Source is the primary side of replication. It taps every WAL log for
// encoded record payloads, holds them until their fsync completes, releases
// them in global LSN order, and fans identical frames out to subscribed
// follower streams. It also tracks per-follower acknowledgements for the
// sync ack mode.
//
// Release invariant: next is the lowest LSN not yet released; a record
// frame releases only when its LSN == next (then next += span), and a DDL
// annotation at LSN L releases once next > L — i.e. after every record up
// to and including L. Because recovery re-assigns identical LSNs on
// replay, releasing in LSN order means a follower applying the stream in
// arrival order reproduces the primary's exact LSN assignment.
type Source struct {
	stages []*logStage

	mu   sync.Mutex
	next uint64 // lowest unreleased LSN
	heap frameHeap
	subs map[*Sub]struct{}

	released  atomic.Uint64 // next-1: the durable released cursor
	staged    atomic.Int64  // frames staged, lifetime
	emitted   atomic.Int64  // frames released to fan-out, lifetime
	overflows atomic.Int64  // subscriber buffers overflowed, lifetime

	ackMu    sync.Mutex
	acks     map[string]uint64
	attached map[string]int
	maxAcked uint64
	ackWake  chan struct{} // closed and replaced whenever maxAcked advances
}

// NewSource builds a source for nLogs tapped logs with lastLSN the highest
// LSN already durable at open (recovery's frontier): streaming starts at
// lastLSN+1, and anything older is served from the segment set on disk.
func NewSource(nLogs int, lastLSN uint64) *Source {
	s := &Source{
		stages:   make([]*logStage, nLogs),
		next:     lastLSN + 1,
		subs:     make(map[*Sub]struct{}),
		acks:     make(map[string]uint64),
		attached: make(map[string]int),
		ackWake:  make(chan struct{}),
	}
	for i := range s.stages {
		s.stages[i] = &logStage{}
	}
	s.released.Store(lastLSN)
	return s
}

// Tap returns the (onAppend, onDurable) pair to install on log i via
// wal.Log.SetTap. onAppend copies the encoded payload (the log's scratch
// buffer is reused) and stages it; onDurable moves the durable prefix into
// the LSN heap and releases whatever became contiguous.
func (s *Source) Tap(i int) (onAppend func(payload []byte, lsn, span, seq uint64), onDurable func(seq uint64)) {
	st := s.stages[i]
	onAppend = func(payload []byte, lsn, span, seq uint64) {
		f := Frame{
			Type:    FrameRecord,
			Payload: append([]byte(nil), payload...),
			LSN:     lsn,
			Span:    span,
		}
		st.mu.Lock()
		st.fifo = append(st.fifo, staged{seq: seq, f: f})
		st.mu.Unlock()
		s.staged.Add(1)
	}
	onDurable = func(seq uint64) {
		st.mu.Lock()
		n := 0
		for n < len(st.fifo) && st.fifo[n].seq <= seq {
			n++
		}
		if n == 0 {
			st.mu.Unlock()
			return
		}
		durable := make([]Frame, n)
		for j := 0; j < n; j++ {
			durable[j] = st.fifo[j].f
		}
		st.fifo = append(st.fifo[:0], st.fifo[n:]...)
		st.mu.Unlock()

		s.mu.Lock()
		for _, f := range durable {
			heap.Push(&s.heap, f)
		}
		s.releaseLocked()
		s.mu.Unlock()
	}
	return onAppend, onDurable
}

// StageDDL stages a catalog statement for fan-out: idx is its 0-based
// position in the primary's catalog, lsn the engine LSN frontier at DDL
// time (the record order it must follow). The catalog fsync already made
// it durable, so it goes straight to the heap.
func (s *Source) StageDDL(idx, lsn uint64, stmt string) {
	f := Frame{
		Type:    FrameDDL,
		Payload: AppendDDLFrame(nil, idx, lsn, stmt)[9:], // body without envelope+type
		LSN:     lsn,
		Span:    0,
	}
	s.staged.Add(1)
	s.mu.Lock()
	heap.Push(&s.heap, f)
	s.releaseLocked()
	s.mu.Unlock()
}

// releaseLocked pops the heap while its top is releasable and emits to
// every subscriber. Duplicate record LSNs (impossible in a healthy engine)
// are dropped rather than wedging the stream.
func (s *Source) releaseLocked() {
	for s.heap.Len() > 0 {
		top := s.heap[0]
		if top.Span == 0 {
			if top.LSN >= s.next {
				break // DDL waits for the record that allocated its LSN
			}
		} else if top.LSN != s.next {
			if top.LSN > s.next {
				break // gap: an earlier LSN is still in some log's fifo
			}
			heap.Pop(&s.heap) // stale duplicate; drop
			continue
		}
		f := heap.Pop(&s.heap).(Frame)
		if f.Span > 0 {
			s.next = f.LSN + f.Span
			s.released.Store(s.next - 1)
		}
		s.emitted.Add(1)
		for sub := range s.subs {
			select {
			case sub.C <- f:
			default:
				// Slow subscriber: shed it. The stream handler sees the
				// close and re-catches-up from its last delivered LSN.
				delete(s.subs, sub)
				close(sub.C)
				s.overflows.Add(1)
			}
		}
	}
}

// Subscribe registers a fan-out stream with the given channel buffer.
func (s *Source) Subscribe(buffer int) *Sub {
	if buffer <= 0 {
		buffer = 1024
	}
	s.mu.Lock()
	sub := &Sub{C: make(chan Frame, buffer), StartLSN: s.next - 1}
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	return sub
}

// Unsubscribe removes sub; safe to call after an overflow shed.
func (s *Source) Unsubscribe(sub *Sub) {
	s.mu.Lock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		close(sub.C)
	}
	s.mu.Unlock()
}

// Cursor returns the durable released LSN frontier (heartbeat payload).
func (s *Source) Cursor() uint64 { return s.released.Load() }

// Attach registers a follower connection for ack accounting; Detach
// unregisters it. Attach/Detach are reference-counted per follower id so a
// reconnect racing its predecessor's teardown doesn't lose the follower.
func (s *Source) Attach(id string) {
	s.ackMu.Lock()
	s.attached[id]++
	s.ackMu.Unlock()
}

// Detach removes one reference to follower id. Dropping the last follower
// wakes every WaitAcked waiter so sync-mode writes degrade immediately
// instead of sleeping out their timeout against nobody.
func (s *Source) Detach(id string) {
	s.ackMu.Lock()
	if s.attached[id]--; s.attached[id] <= 0 {
		delete(s.attached, id)
	}
	if len(s.attached) == 0 {
		close(s.ackWake)
		s.ackWake = make(chan struct{})
	}
	s.ackMu.Unlock()
}

// Ack records follower id as having applied everything through lsn.
func (s *Source) Ack(id string, lsn uint64) {
	s.ackMu.Lock()
	if lsn > s.acks[id] {
		s.acks[id] = lsn
	}
	if lsn > s.maxAcked {
		s.maxAcked = lsn
		close(s.ackWake)
		s.ackWake = make(chan struct{})
	}
	s.ackMu.Unlock()
}

// WaitAcked blocks until at least one follower has acknowledged lsn
// (semi-synchronous ack: the write survives the loss of the primary) or
// the timeout elapses. It returns false — degrade, don't block the write
// path forever — on timeout or when no follower is attached at all.
func (s *Source) WaitAcked(lsn uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	s.ackMu.Lock()
	for s.maxAcked < lsn {
		if len(s.attached) == 0 {
			s.ackMu.Unlock()
			return false
		}
		wake := s.ackWake
		s.ackMu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		t := time.NewTimer(wait)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			s.ackMu.Lock()
			ok := s.maxAcked >= lsn
			s.ackMu.Unlock()
			return ok
		}
		s.ackMu.Lock()
	}
	s.ackMu.Unlock()
	return true
}

// Followers snapshots the ack table for stats.
func (s *Source) Followers() []FollowerAck {
	s.ackMu.Lock()
	out := make([]FollowerAck, 0, len(s.attached))
	for id := range s.attached {
		out = append(out, FollowerAck{ID: id, AckedLSN: s.acks[id]})
	}
	s.ackMu.Unlock()
	return out
}

// SourceStats is a counters snapshot for /stats.
type SourceStats struct {
	Cursor    uint64
	Staged    int64
	Emitted   int64
	Overflows int64
	Followers int
}

// Stats snapshots the source counters.
func (s *Source) Stats() SourceStats {
	s.ackMu.Lock()
	nf := len(s.attached)
	s.ackMu.Unlock()
	return SourceStats{
		Cursor:    s.released.Load(),
		Staged:    s.staged.Load(),
		Emitted:   s.emitted.Load(),
		Overflows: s.overflows.Load(),
		Followers: nf,
	}
}
