package repl

import (
	"testing"
	"time"
)

// drain pulls everything currently buffered on sub.
func drain(sub *Sub) []Frame {
	var out []Frame
	for {
		select {
		case f, ok := <-sub.C:
			if !ok {
				return out
			}
			out = append(out, f)
		default:
			return out
		}
	}
}

// TestSourceReleaseOrder: appends across shard logs become durable out of
// LSN order; the source must withhold the later LSN until the gap fills,
// then release in global LSN order.
func TestSourceReleaseOrder(t *testing.T) {
	s := NewSource(2, 0)
	app0, dur0 := s.Tap(0)
	app1, dur1 := s.Tap(1)
	sub := s.Subscribe(16)
	if sub.StartLSN != 0 {
		t.Fatalf("StartLSN=%d want 0", sub.StartLSN)
	}

	app0([]byte{1}, 1, 1, 100) // log0 holds LSN 1
	app1([]byte{2}, 2, 1, 200) // log1 holds LSN 2
	dur1(200)                  // LSN 2 durable first: must NOT release
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("released %d frames across a durability gap", len(got))
	}
	if s.Cursor() != 0 {
		t.Fatalf("cursor=%d want 0", s.Cursor())
	}
	dur0(100) // gap filled: both release, in LSN order
	got := drain(sub)
	if len(got) != 2 || got[0].LSN != 1 || got[1].LSN != 2 {
		t.Fatalf("release order: %+v", got)
	}
	if s.Cursor() != 2 {
		t.Fatalf("cursor=%d want 2", s.Cursor())
	}
}

// TestSourceSpans: a multi-tuple record (RecAppendEach) occupies a span of
// LSNs; the next record releases only at LSN+span.
func TestSourceSpans(t *testing.T) {
	s := NewSource(1, 0)
	app, dur := s.Tap(0)
	sub := s.Subscribe(16)

	app([]byte{1}, 1, 3, 1) // LSNs 1..3
	app([]byte{2}, 4, 1, 2)
	dur(2)
	got := drain(sub)
	if len(got) != 2 || got[0].LSN != 1 || got[0].Span != 3 || got[1].LSN != 4 {
		t.Fatalf("span release: %+v", got)
	}
	if s.Cursor() != 4 {
		t.Fatalf("cursor=%d want 4", s.Cursor())
	}
}

// TestSourceDDLOrdering: a DDL annotation stamped at LSN L rides after the
// record that allocated L and before the record at L+1.
func TestSourceDDLOrdering(t *testing.T) {
	s := NewSource(1, 0)
	app, dur := s.Tap(0)
	sub := s.Subscribe(16)

	app([]byte{1}, 1, 1, 1)
	s.StageDDL(0, 1, "CREATE VIEW v AS SELECT a FROM c") // waits for record 1
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("DDL released before its record: %+v", got)
	}
	dur(1)
	got := drain(sub)
	if len(got) != 2 || got[0].Type != FrameRecord || got[1].Type != FrameDDL {
		t.Fatalf("DDL ordering: %+v", got)
	}
	idx, lsn, stmt, err := DecodeDDLFrame(got[1].Payload)
	if err != nil || idx != 0 || lsn != 1 || stmt != "CREATE VIEW v AS SELECT a FROM c" {
		t.Fatalf("DDL body: idx=%d lsn=%d stmt=%q err=%v", idx, lsn, stmt, err)
	}

	// A DDL at the released frontier (no pending record) releases at once.
	s.StageDDL(1, 1, "DROP VIEW v")
	if got := drain(sub); len(got) != 1 || got[0].Type != FrameDDL {
		t.Fatalf("frontier DDL: %+v", got)
	}
}

// TestSourceOverflowShed: a subscriber that cannot drain its buffer is
// removed and its channel closed rather than wedging the release path.
func TestSourceOverflowShed(t *testing.T) {
	s := NewSource(1, 0)
	app, dur := s.Tap(0)
	slow := s.Subscribe(1)
	fast := s.Subscribe(16)

	for i := uint64(1); i <= 3; i++ {
		app([]byte{byte(i)}, i, 1, i)
	}
	dur(3)

	got := drain(slow)
	closed := false
	if _, ok := <-slow.C; !ok {
		closed = true
	}
	if !closed || len(got) != 1 {
		t.Fatalf("slow sub: closed=%v delivered=%d", closed, len(got))
	}
	if got := drain(fast); len(got) != 3 {
		t.Fatalf("fast sub lost frames: %d", len(got))
	}
	if s.Stats().Overflows != 1 {
		t.Fatalf("overflows=%d want 1", s.Stats().Overflows)
	}
	s.Unsubscribe(slow) // idempotent after a shed
	s.Unsubscribe(fast)
}

func TestWaitAcked(t *testing.T) {
	s := NewSource(1, 0)

	// No follower attached: degrade immediately, not after the timeout.
	start := time.Now()
	if s.WaitAcked(5, time.Second) {
		t.Fatal("acked with no followers")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("WaitAcked blocked with no followers attached")
	}

	s.Attach("f1")
	defer s.Detach("f1")

	// Already-acked LSN returns without blocking.
	s.Ack("f1", 5)
	if !s.WaitAcked(5, time.Millisecond) {
		t.Fatal("not acked at 5")
	}
	// Timeout path.
	if s.WaitAcked(10, 10*time.Millisecond) {
		t.Fatal("acked at 10 without an ack")
	}
	// Any-follower semantics: a second follower's ack satisfies the wait.
	s.Attach("f2")
	defer s.Detach("f2")
	done := make(chan bool, 1)
	go func() { done <- s.WaitAcked(10, 2*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	s.Ack("f2", 12)
	if !<-done {
		t.Fatal("waiter missed the wake")
	}

	fa := s.Followers()
	if len(fa) != 2 {
		t.Fatalf("followers=%d want 2", len(fa))
	}
}
