package repl

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte{7, 1, 2, 3, 4, 5}
	var stream []byte
	stream = AppendRecordFrame(stream, payload)
	stream = AppendHeartbeatFrame(stream, 42)
	stream = AppendDDLFrame(stream, 3, 17, "CREATE CHRONICLE c (a INT)")

	// Single-buffer decoder.
	b := stream
	typ, p, n, err := DecodeFrame(b)
	if err != nil || typ != FrameRecord || !bytes.Equal(p, payload) {
		t.Fatalf("record frame: typ=%d p=%v err=%v", typ, p, err)
	}
	b = b[n:]
	typ, p, n, err = DecodeFrame(b)
	if err != nil || typ != FrameHeartbeat {
		t.Fatalf("heartbeat frame: typ=%d err=%v", typ, err)
	}
	lsn, err := DecodeHeartbeatFrame(p)
	if err != nil || lsn != 42 {
		t.Fatalf("heartbeat lsn=%d err=%v", lsn, err)
	}
	b = b[n:]
	typ, p, n, err = DecodeFrame(b)
	if err != nil || typ != FrameDDL {
		t.Fatalf("ddl frame: typ=%d err=%v", typ, err)
	}
	idx, dlsn, stmt, err := DecodeDDLFrame(p)
	if err != nil || idx != 3 || dlsn != 17 || stmt != "CREATE CHRONICLE c (a INT)" {
		t.Fatalf("ddl decode: idx=%d lsn=%d stmt=%q err=%v", idx, dlsn, stmt, err)
	}
	if len(b[n:]) != 0 {
		t.Fatalf("trailing bytes: %d", len(b[n:]))
	}

	// Streaming decoder must agree frame for frame.
	fr := NewFrameReader(bytes.NewReader(stream))
	for i, want := range []byte{FrameRecord, FrameHeartbeat, FrameDDL} {
		typ, _, err := fr.Next()
		if err != nil || typ != want {
			t.Fatalf("frame %d: typ=%d want=%d err=%v", i, typ, want, err)
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestFrameReaderCorruption(t *testing.T) {
	frame := AppendRecordFrame(nil, []byte{1, 2, 3})

	// A flipped payload byte is a checksum mismatch, never silent.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if _, _, err := NewFrameReader(bytes.NewReader(bad)).Next(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt payload: err=%v", err)
	}
	if _, _, _, err := DecodeFrame(bad); err == nil {
		t.Fatal("DecodeFrame accepted corrupt payload")
	}

	// Truncation inside the header or the payload is an error, not EOF:
	// replication streams have no legitimate torn frames.
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := NewFrameReader(bytes.NewReader(frame[:cut])).Next(); err == nil || err == io.EOF {
			t.Fatalf("truncated at %d: err=%v", cut, err)
		}
		if _, _, _, err := DecodeFrame(frame[:cut]); err == nil {
			t.Fatalf("DecodeFrame accepted truncation at %d", cut)
		}
	}

	// An absurd length prefix is corruption, not an allocation request.
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge, uint32(maxFrame+1))
	if _, _, err := NewFrameReader(bytes.NewReader(huge)).Next(); err == nil {
		t.Fatal("oversized length accepted")
	}
	zero := make([]byte, 8)
	if _, _, _, err := DecodeFrame(zero); err == nil {
		t.Fatal("zero length accepted")
	}
}

// FuzzReplFrame drives the stream decoder with arbitrary bytes: it must
// never panic, never over-read, and must agree with the single-buffer
// decoder on every frame it accepts.
func FuzzReplFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecordFrame(nil, []byte{1, 2, 3, 4}))
	f.Add(AppendHeartbeatFrame(nil, 123456789))
	f.Add(AppendDDLFrame(nil, 0, 9, "CREATE CHRONICLE t (x INT)"))
	f.Add(append(AppendHeartbeatFrame(nil, 7), 0xde, 0xad, 0xbe))
	long := bytes.Repeat([]byte{0x5a}, 300)
	f.Add(AppendRecordFrame(AppendDDLFrame(nil, 1, 2, "DROP VIEW v"), long))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-buffer walk: consume frames until error or exhaustion.
		rest := data
		var kinds []byte
		for {
			typ, payload, n, err := DecodeFrame(rest)
			if err != nil {
				break
			}
			if n <= 8 || n > len(rest) {
				t.Fatalf("DecodeFrame consumed %d of %d", n, len(rest))
			}
			if len(payload) != n-8-1 {
				t.Fatalf("payload %d bytes for frame of %d", len(payload), n)
			}
			switch typ {
			case FrameHeartbeat:
				DecodeHeartbeatFrame(payload)
			case FrameDDL:
				if idx, lsn, stmt, err := DecodeDDLFrame(payload); err == nil {
					// Accepted DDL bodies must re-encode losslessly.
					re := AppendDDLFrame(nil, idx, lsn, stmt)
					if _, p2, _, err := DecodeFrame(re); err != nil || !bytes.Equal(p2[len(p2)-len(stmt):], []byte(stmt)) {
						t.Fatalf("ddl re-encode mismatch: %v", err)
					}
				}
			}
			kinds = append(kinds, typ)
			rest = rest[n:]
		}

		// The streaming reader must accept exactly the same prefix.
		fr := NewFrameReader(bytes.NewReader(data))
		for i, want := range kinds {
			typ, _, err := fr.Next()
			if err != nil || typ != want {
				t.Fatalf("reader frame %d: typ=%d want=%d err=%v", i, typ, want, err)
			}
		}
		if _, _, err := fr.Next(); err == nil {
			t.Fatal("reader accepted a frame the single-buffer decoder rejected")
		}
	})
}
