package repl

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chronicledb/internal/wal"
)

// Callbacks are the follower database's apply hooks. All three are invoked
// from the replica's single apply goroutine, so they never race each
// other.
type Callbacks struct {
	// ApplyRecord applies one replicated WAL record through the follower's
	// engine (the recovery apply switch). Frames arrive in LSN order.
	ApplyRecord func(r wal.Record) error
	// ApplyDDL applies catalog statement idx (0-based position in the
	// primary's catalog). It must skip idx below the follower's own count
	// (redelivery) and error on a gap above it.
	ApplyDDL func(idx uint64, stmt string) error
	// DDLCount reports how many catalog statements the follower has
	// applied, sent with each stream request so the primary can replay the
	// missing catalog tail.
	DDLCount func() uint64
	// Snapshot performs a full resync after the primary reports the
	// requested LSN is gone (compacted below its checkpoint), returning
	// the restored LSN frontier.
	Snapshot func() (uint64, error)
}

// Config configures a Replica.
type Config struct {
	Primary    string // primary base URL, e.g. http://127.0.0.1:7457
	FollowerID string
	From       uint64 // applied LSN frontier at start (follower recovery's eng.LSN())
	Client     *http.Client
	// Backoff between failed connection attempts (default 100ms).
	Backoff time.Duration
}

// State is a point-in-time snapshot of replication progress for stats and
// staleness accounting.
type State struct {
	AppliedLSN    uint64
	PrimaryLSN    uint64
	Connected     bool
	LastContact   time.Time
	CaughtUpAt    time.Time
	Resyncs       int64
	FramesApplied int64
}

// Replica tails a primary's replication stream and applies it. One apply
// goroutine consumes frames; one acker goroutine posts the applied LSN
// back so the primary's sync ack mode can wait on it.
type Replica struct {
	cfg Config
	cb  Callbacks

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	applied    atomic.Uint64
	primaryLSN atomic.Uint64
	connected  atomic.Bool
	lastMs     atomic.Int64 // last primary contact, unix millis
	caughtMs   atomic.Int64 // last moment applied >= primaryLSN, unix millis
	resyncs    atomic.Int64
	frames     atomic.Int64

	ackKick chan struct{}

	lastErr struct {
		sync.Mutex
		err error
	}
}

// Start launches the replica loop.
func Start(cfg Config, cb Callbacks) *Replica {
	if cfg.Client == nil {
		cfg.Client = &http.Client{} // no overall timeout: the stream is long-lived
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{cfg: cfg, cb: cb, ctx: ctx, cancel: cancel, ackKick: make(chan struct{}, 1)}
	r.applied.Store(cfg.From)
	now := time.Now().UnixMilli()
	r.lastMs.Store(now)
	r.caughtMs.Store(now)
	r.wg.Add(2)
	go r.run()
	go r.ackLoop()
	return r
}

// Stop tears the replica down and waits for both goroutines to exit. After
// Stop returns no further frames will be applied — the promotion seal
// point.
func (r *Replica) Stop() {
	r.cancel()
	r.wg.Wait()
}

// State snapshots replication progress.
func (r *Replica) State() State {
	return State{
		AppliedLSN:    r.applied.Load(),
		PrimaryLSN:    r.primaryLSN.Load(),
		Connected:     r.connected.Load(),
		LastContact:   time.UnixMilli(r.lastMs.Load()),
		CaughtUpAt:    time.UnixMilli(r.caughtMs.Load()),
		Resyncs:       r.resyncs.Load(),
		FramesApplied: r.frames.Load(),
	}
}

// Err returns the most recent stream error (nil when healthy).
func (r *Replica) Err() error {
	r.lastErr.Lock()
	defer r.lastErr.Unlock()
	return r.lastErr.err
}

func (r *Replica) setErr(err error) {
	r.lastErr.Lock()
	r.lastErr.err = err
	r.lastErr.Unlock()
}

func (r *Replica) run() {
	defer r.wg.Done()
	for r.ctx.Err() == nil {
		err := r.stream()
		if r.ctx.Err() != nil {
			return
		}
		r.setErr(err)
		r.connected.Store(false)
		select {
		case <-r.ctx.Done():
			return
		case <-time.After(r.cfg.Backoff):
		}
	}
}

// stream opens one connection to the primary and applies frames until it
// breaks. It returns the terminal error (nil only on context cancel).
func (r *Replica) stream() error {
	from := r.applied.Load()
	u := strings.TrimRight(r.cfg.Primary, "/") + "/repl/stream?" + url.Values{
		"from":     {strconv.FormatUint(from, 10)},
		"follower": {r.cfg.FollowerID},
		"ddl":      {strconv.FormatUint(r.cb.DDLCount(), 10)},
	}.Encode()
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		if r.cb.Snapshot == nil {
			return fmt.Errorf("repl: primary compacted past lsn %d and no snapshot hook", from)
		}
		lsn, err := r.cb.Snapshot()
		if err != nil {
			return fmt.Errorf("repl: snapshot resync: %w", err)
		}
		r.resyncs.Add(1)
		r.applied.Store(lsn)
		r.kickAck()
		return fmt.Errorf("repl: resynced from snapshot at lsn %d", lsn)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("repl: primary returned %s", resp.Status)
	}

	r.connected.Store(true)
	r.setErr(nil)
	fr := NewFrameReader(resp.Body)
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			return err
		}
		r.lastMs.Store(time.Now().UnixMilli())
		switch typ {
		case FrameRecord:
			rec, err := wal.DecodeRecord(payload)
			if err != nil {
				return err
			}
			span := wal.RecordSpan(rec)
			top := rec.LSN + span - 1
			if top <= r.applied.Load() {
				continue // overlap after reconnect; already applied
			}
			if err := r.cb.ApplyRecord(rec); err != nil {
				return fmt.Errorf("repl: apply lsn %d: %w", rec.LSN, err)
			}
			r.frames.Add(1)
			r.applied.Store(top)
			r.noteProgress()
			r.kickAck()
		case FrameDDL:
			idx, _, stmt, err := DecodeDDLFrame(payload)
			if err != nil {
				return err
			}
			if err := r.cb.ApplyDDL(idx, stmt); err != nil {
				return fmt.Errorf("repl: apply ddl %d: %w", idx, err)
			}
			r.frames.Add(1)
		case FrameHeartbeat:
			lsn, err := DecodeHeartbeatFrame(payload)
			if err != nil {
				return err
			}
			if lsn > r.primaryLSN.Load() {
				r.primaryLSN.Store(lsn)
			}
			r.noteProgress()
		default:
			return fmt.Errorf("repl: unknown frame type %d", typ)
		}
	}
}

// noteProgress refreshes the caught-up stamp whenever the applied frontier
// covers the primary's advertised cursor — the basis of the staleness
// bound: lag_ns = now - caughtUpAt.
func (r *Replica) noteProgress() {
	if r.applied.Load() >= r.primaryLSN.Load() {
		r.caughtMs.Store(time.Now().UnixMilli())
	}
}

func (r *Replica) kickAck() {
	select {
	case r.ackKick <- struct{}{}:
	default:
	}
}

// ackLoop posts the applied LSN back to the primary. The buffered kick
// channel coalesces: at most one ack POST is in flight, covering whatever
// frontier the apply loop reached meanwhile.
func (r *Replica) ackLoop() {
	defer r.wg.Done()
	var lastAcked uint64
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-r.ackKick:
		}
		lsn := r.applied.Load()
		if lsn <= lastAcked {
			continue
		}
		body := fmt.Sprintf(`{"follower":%q,"lsn":%d}`, r.cfg.FollowerID, lsn)
		req, err := http.NewRequestWithContext(r.ctx, http.MethodPost,
			strings.TrimRight(r.cfg.Primary, "/")+"/repl/ack", strings.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.cfg.Client.Do(req)
		ok := false
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
		if ok {
			lastAcked = lsn
			continue
		}
		// Failed ack with possibly no further frames coming: retry after a
		// backoff so a caught-up follower still converges its ack.
		select {
		case <-r.ctx.Done():
			return
		case <-time.After(r.cfg.Backoff):
			r.kickAck()
		}
	}
}
