package chronicle

import (
	"testing"
	"testing/quick"

	"chronicledb/internal/value"
)

func callSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
	)
}

func row(acct string, minutes int64) value.Tuple {
	return value.Tuple{value.Str(acct), value.Int(minutes)}
}

func TestNewChronicleValidation(t *testing.T) {
	g := NewGroup("g")
	if _, err := g.NewChronicle("c", nil, RetainAll); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := g.NewChronicle("c", callSchema(), Retention(-5)); err == nil {
		t.Error("invalid retention accepted")
	}
	if _, err := g.NewChronicle("c", callSchema(), RetainAll); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := g.NewChronicle("c", callSchema(), RetainAll); err == nil {
		t.Error("duplicate name accepted")
	}
	if len(g.Members()) != 1 || g.Members()[0].Name() != "c" {
		t.Errorf("Members = %v", g.Members())
	}
}

func TestAppendBasics(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("calls", callSchema(), RetainAll)
	if c.LastSN() != -1 || g.LastSN() != -1 || g.NextSN() != 0 {
		t.Fatal("fresh chronicle should have no sequence numbers")
	}
	rows, err := c.Append(0, 1000, 1, []value.Tuple{row("a", 10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].SN != 0 || rows[0].Chronon != 1000 || rows[0].LSN != 1 {
		t.Errorf("rows = %+v", rows)
	}
	if c.Len() != 1 || c.Total() != 1 || c.LastSN() != 0 {
		t.Errorf("Len=%d Total=%d LastSN=%d", c.Len(), c.Total(), c.LastSN())
	}
	// Multiple tuples may share one SN within a single insert.
	if _, err := c.Append(5, 2000, 2, []value.Tuple{row("a", 1), row("b", 2)}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.LastSN() != 5 || g.NextSN() != 6 {
		t.Errorf("after batch: Len=%d LastSN=%d", c.Len(), c.LastSN())
	}
}

func TestAppendRejectsStaleAndBadTuples(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("calls", callSchema(), RetainAll)
	if _, err := c.Append(3, 0, 1, []value.Tuple{row("a", 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(3, 0, 2, []value.Tuple{row("b", 1)}); err == nil {
		t.Error("equal SN accepted")
	}
	if _, err := c.Append(2, 0, 2, []value.Tuple{row("b", 1)}); err == nil {
		t.Error("smaller SN accepted")
	}
	if _, err := c.Append(9, 0, 2, nil); err == nil {
		t.Error("empty append accepted")
	}
	if _, err := c.Append(9, 0, 2, []value.Tuple{{value.Int(1)}}); err == nil {
		t.Error("schema-violating tuple accepted")
	}
	// A failed append must not advance the group's high-water mark.
	if g.LastSN() != 3 {
		t.Errorf("LastSN = %d after failed appends", g.LastSN())
	}
}

func TestGroupDiscipline(t *testing.T) {
	g := NewGroup("g")
	a, _ := g.NewChronicle("a", callSchema(), RetainAll)
	b, _ := g.NewChronicle("b", callSchema(), RetainAll)
	if _, err := a.Append(0, 0, 1, []value.Tuple{row("x", 1)}); err != nil {
		t.Fatal(err)
	}
	// b's first insert must still exceed the *group* maximum.
	if _, err := b.Append(0, 0, 2, []value.Tuple{row("y", 1)}); err == nil {
		t.Error("group-stale SN accepted on sibling chronicle")
	}
	if _, err := b.Append(1, 0, 2, []value.Tuple{row("y", 1)}); err != nil {
		t.Fatal(err)
	}
	if g.LastSN() != 1 {
		t.Errorf("group LastSN = %d", g.LastSN())
	}
	if _, err := a.Append(2, 0, 3, []value.Tuple{row("z", 1)}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupDisciplineQuick(t *testing.T) {
	// Whatever interleaving of appends across two chronicles of a group,
	// accepted SNs are strictly increasing group-wide.
	f := func(sns []int16, pick []bool) bool {
		g := NewGroup("g")
		a, _ := g.NewChronicle("a", callSchema(), RetainAll)
		b, _ := g.NewChronicle("b", callSchema(), RetainAll)
		last := int64(-1)
		for i, sn := range sns {
			c := a
			if i < len(pick) && pick[i] {
				c = b
			}
			_, err := c.Append(int64(sn), 0, uint64(i), []value.Tuple{row("k", 1)})
			if err == nil {
				if int64(sn) <= last {
					return false // accepted a non-increasing SN
				}
				last = int64(sn)
			} else if int64(sn) > last {
				return false // rejected a valid SN
			}
			if g.LastSN() != last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRetentionWindow(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), Retention(3))
	for i := 0; i < 10; i++ {
		if _, err := c.Append(int64(i), 0, uint64(i), []value.Tuple{row("a", int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
	if c.Total() != 10 || c.Dropped() != 7 {
		t.Errorf("Total=%d Dropped=%d", c.Total(), c.Dropped())
	}
	var sns []int64
	c.Scan(func(r Row) bool { sns = append(sns, r.SN); return true })
	if len(sns) != 3 || sns[0] != 7 || sns[2] != 9 {
		t.Errorf("retained SNs = %v, want [7 8 9]", sns)
	}
}

func TestRetainNone(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), RetainNone)
	rows, err := c.Append(0, 0, 1, []value.Tuple{row("a", 1), row("b", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("Append must still return rows for view maintenance, got %d", len(rows))
	}
	if c.Len() != 0 || c.Total() != 2 || c.Dropped() != 2 {
		t.Errorf("Len=%d Total=%d Dropped=%d", c.Len(), c.Total(), c.Dropped())
	}
}

func TestScanAndEarlyStop(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), RetainAll)
	for i := 0; i < 100; i++ {
		c.Append(int64(i), int64(i*10), uint64(i), []value.Tuple{row("a", int64(i))})
	}
	count := 0
	c.Scan(func(Row) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanRange(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), RetainAll)
	for i := 0; i < 50; i++ {
		c.Append(int64(i*2), 0, uint64(i), []value.Tuple{row("a", int64(i))}) // SNs 0,2,...,98
	}
	var got []int64
	c.ScanRange(11, 21, func(r Row) bool { got = append(got, r.SN); return true })
	want := []int64{12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("ScanRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanRange = %v, want %v", got, want)
		}
	}
	// Empty range.
	got = got[:0]
	c.ScanRange(200, 300, func(r Row) bool { got = append(got, r.SN); return true })
	if len(got) != 0 {
		t.Errorf("out-of-range scan returned %v", got)
	}
}

func TestRestoreLastSN(t *testing.T) {
	g := NewGroup("g")
	g.RestoreLastSN(41)
	if g.NextSN() != 42 {
		t.Errorf("NextSN = %d", g.NextSN())
	}
	g.RestoreLastSN(10) // must not regress
	if g.LastSN() != 41 {
		t.Errorf("LastSN regressed to %d", g.LastSN())
	}
}

func TestAppendBatch(t *testing.T) {
	g := NewGroup("g")
	a, _ := g.NewChronicle("a", callSchema(), RetainAll)
	b, _ := g.NewChronicle("b", callSchema(), RetainAll)
	got, err := g.AppendBatch(5, 77, 9, []BatchPart{
		{C: a, Tuples: []value.Tuple{row("x", 1), row("y", 2)}},
		{C: b, Tuples: []value.Tuple{row("z", 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[a]) != 2 || len(got[b]) != 1 {
		t.Fatalf("batch rows = %v", got)
	}
	if got[a][0].SN != 5 || got[b][0].SN != 5 || got[b][0].Chronon != 77 || got[b][0].LSN != 9 {
		t.Errorf("row metadata = %+v", got[b][0])
	}
	if g.LastSN() != 5 || a.LastSN() != 5 || b.LastSN() != 5 {
		t.Error("high-water marks not advanced")
	}
}

func TestAppendBatchValidation(t *testing.T) {
	g := NewGroup("g")
	a, _ := g.NewChronicle("a", callSchema(), RetainAll)
	other := NewGroup("other")
	foreign, _ := other.NewChronicle("f", callSchema(), RetainAll)

	if _, err := g.AppendBatch(0, 0, 1, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := g.AppendBatch(0, 0, 1, []BatchPart{{C: foreign, Tuples: []value.Tuple{row("x", 1)}}}); err == nil {
		t.Error("foreign chronicle accepted")
	}
	if _, err := g.AppendBatch(0, 0, 1, []BatchPart{{C: a}}); err == nil {
		t.Error("empty part accepted")
	}
	if _, err := g.AppendBatch(0, 0, 1, []BatchPart{{C: a, Tuples: []value.Tuple{{value.Int(1)}}}}); err == nil {
		t.Error("schema violation accepted")
	}
	// Nothing was stored by the failed attempts.
	if a.Len() != 0 || g.LastSN() != -1 {
		t.Error("failed batch left state behind")
	}
	if _, err := g.AppendBatch(3, 0, 1, []BatchPart{{C: a, Tuples: []value.Tuple{row("x", 1)}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AppendBatch(3, 0, 2, []BatchPart{{C: a, Tuples: []value.Tuple{row("x", 1)}}}); err == nil {
		t.Error("stale SN accepted")
	}
}

func TestRestore(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), RetainAll)
	rows := []Row{
		{SN: 3, Chronon: 30, LSN: 1, Vals: row("a", 1)},
		{SN: 7, Chronon: 70, LSN: 2, Vals: row("b", 2)},
	}
	if err := c.Restore(rows, 5); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Dropped() != 5 || c.Total() != 7 {
		t.Errorf("Len=%d Dropped=%d Total=%d", c.Len(), c.Dropped(), c.Total())
	}
	if c.LastSN() != 7 || g.LastSN() != 7 {
		t.Errorf("LastSN=%d group=%d", c.LastSN(), g.LastSN())
	}
	// Appends continue past the restored high-water mark.
	if _, err := c.Append(8, 0, 3, []value.Tuple{row("c", 3)}); err != nil {
		t.Fatal(err)
	}
	// Out-of-order restores and schema violations are rejected.
	if err := c.Restore([]Row{{SN: 5, Vals: row("a", 1)}, {SN: 4, Vals: row("b", 2)}}, 0); err == nil {
		t.Error("out-of-order restore accepted")
	}
	if err := c.Restore([]Row{{SN: 9, Vals: value.Tuple{value.Int(1)}}}, 0); err == nil {
		t.Error("schema-violating restore accepted")
	}
	// Restoring an empty window is fine.
	c2, _ := g.NewChronicle("c2", callSchema(), RetainNone)
	if err := c2.Restore(nil, 42); err != nil {
		t.Fatal(err)
	}
	if c2.Dropped() != 42 {
		t.Errorf("Dropped = %d", c2.Dropped())
	}
}

func TestAccessors(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), Retention(7))
	if c.Name() != "c" || c.Group() != g || c.Retention() != Retention(7) {
		t.Error("accessors")
	}
	if c.Schema().Len() != 2 {
		t.Error("schema accessor")
	}
	if g.Name() != "g" {
		t.Error("group name")
	}
	if rows := c.Rows(); len(rows) != 0 {
		t.Errorf("Rows = %v", rows)
	}
}

func TestRetainSpan(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), RetainAll)
	if err := c.SetRetainSpan(-1); err == nil {
		t.Error("negative span accepted")
	}
	if err := c.SetRetainSpan(100); err != nil {
		t.Fatal(err)
	}
	if c.RetainSpan() != 100 {
		t.Errorf("RetainSpan = %d", c.RetainSpan())
	}
	// Chronons 0, 50, 120, 130, 250: span 100 keeps rows within 100 of the
	// newest (exclusive at exactly span distance).
	for i, ch := range []int64{0, 50, 120, 130, 250} {
		if _, err := c.Append(int64(i), ch, uint64(i+1), []value.Tuple{row("a", int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var chronons []int64
	c.Scan(func(r Row) bool { chronons = append(chronons, r.Chronon); return true })
	// Newest = 250, horizon = 150: rows at 0, 50, 120, 130 are dropped.
	if len(chronons) != 1 || chronons[0] != 250 {
		t.Errorf("retained chronons = %v, want [250]", chronons)
	}
	if c.Dropped() != 4 || c.Total() != 5 {
		t.Errorf("Dropped=%d Total=%d", c.Dropped(), c.Total())
	}
}

func TestRetainSpanWithCountWindow(t *testing.T) {
	g := NewGroup("g")
	c, _ := g.NewChronicle("c", callSchema(), Retention(3))
	c.SetRetainSpan(1000) // generous span: the count limit dominates
	for i := 0; i < 10; i++ {
		c.Append(int64(i), int64(i), uint64(i+1), []value.Tuple{row("a", 1)})
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d (count policy should dominate)", c.Len())
	}
	// Now a tight span dominates the count limit.
	c2, _ := g.NewChronicle("c2", callSchema(), Retention(100))
	c2.SetRetainSpan(2)
	for i := 10; i < 20; i++ {
		c2.Append(int64(i), int64(i*10), uint64(i+1), []value.Tuple{row("a", 1)})
	}
	if c2.Len() != 1 {
		t.Errorf("Len = %d (span policy should dominate: gaps of 10 > span 2)", c2.Len())
	}
}
