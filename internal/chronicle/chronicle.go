// Package chronicle implements the chronicle of the chronicle data model:
// an append-only, unboundedly growing sequence of transaction records.
//
// A chronicle is "similar to a relation, except that a chronicle is a
// sequence, rather than an unordered set, of tuples" (Section 2.1). The only
// permissible update is the insertion of tuples whose sequence number
// exceeds every sequence number already present — not just in the chronicle
// itself but in its whole chronicle group (Section 4). Because "it is beyond
// the capacity of any database system to store and provide access to this
// sequence for an indefinite amount of time", each chronicle retains only a
// configurable suffix window; persistent-view maintenance never reads it.
package chronicle

import (
	"fmt"
	"sync"

	"chronicledb/internal/value"
)

// Row is one chronicle record. SN is the sequence number, Chronon the
// temporal instant associated with it, and LSN the global logical sequence
// number of the database at append time — the hook for the implicit
// temporal join with relation versions (Section 2.3).
type Row struct {
	SN      int64
	Chronon int64
	LSN     uint64
	Vals    value.Tuple
}

// Retention controls how much of a chronicle's suffix is stored.
type Retention int64

const (
	// RetainAll keeps the entire chronicle (used by baselines and tests;
	// contrary to the model's spirit, but needed to *check* the model).
	RetainAll Retention = -1
	// RetainNone stores no rows at all: the pure chronicle model, where
	// summary queries must be answered from persistent views alone.
	RetainNone Retention = 0
)

// Chronicle is a single append-only sequence belonging to a Group.
//
// Appends are serialized by the engine (Section 2.3's update semantics are
// inherently serial: proactive relation updates are exactly those ordered
// before later appends). mu additionally guards the retained-row window so
// read methods (Len, Scan, RowsCopy, ...) can run concurrently with
// appends without holding the engine-wide lock.
type Chronicle struct {
	name       string
	schema     *value.Schema
	group      *Group
	retain     Retention
	retainSpan int64 // chronon span to keep; 0 = no time-based trimming

	// mu guards rows, dropped, and lastSN: append grows rows in place and
	// trim replaces the backing array, so readers must not alias them
	// unsynchronized.
	mu      sync.RWMutex
	rows    []Row
	dropped int64 // rows discarded by the retention window
	lastSN  int64 // largest SN appended to this chronicle; -1 if none
}

// Name returns the chronicle's name.
func (c *Chronicle) Name() string { return c.name }

// Schema returns the chronicle's attribute schema (excluding SN and
// chronon, which every chronicle carries implicitly).
func (c *Chronicle) Schema() *value.Schema { return c.schema }

// Group returns the chronicle group this chronicle belongs to.
func (c *Chronicle) Group() *Group { return c.group }

// Retention returns the count-based retention policy.
func (c *Chronicle) Retention() Retention { return c.retain }

// RetainSpan returns the time-based retention span in chronons (0 = none).
func (c *Chronicle) RetainSpan() int64 { return c.retainSpan }

// SetRetainSpan keeps only rows whose chronon is within span of the newest
// row — "the transaction records are stored in a database for some latest
// time window". A span of 0 disables time-based trimming. Both policies may
// be active; the stricter one wins.
func (c *Chronicle) SetRetainSpan(span int64) error {
	if span < 0 {
		return fmt.Errorf("chronicle %s: negative retention span %d", c.name, span)
	}
	c.retainSpan = span
	return nil
}

// Append inserts a batch of tuples sharing one new sequence number. The
// sequence number must exceed every sequence number in the chronicle group;
// the paper allows several tuples to share one SN within a single insert.
// chronon is the temporal instant of the SN and lsn the database LSN.
//
// Append returns the stored rows (also when retention immediately discards
// them) so callers can feed them to view maintenance.
func (c *Chronicle) Append(sn, chronon int64, lsn uint64, tuples []value.Tuple) ([]Row, error) {
	return c.AppendInto(sn, chronon, lsn, tuples, nil)
}

// AppendInto is Append accumulating the stored rows into buf's backing
// array, so a caller driving the hot path can reuse one row buffer across
// appends. The chronicle copies what retention keeps, so buf never aliases
// retained storage; the returned rows are valid until buf's next reuse.
func (c *Chronicle) AppendInto(sn, chronon int64, lsn uint64, tuples []value.Tuple, buf []Row) ([]Row, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("chronicle %s: empty append", c.name)
	}
	if sn <= c.group.lastSN {
		return nil, fmt.Errorf("chronicle %s: sequence number %d not greater than group maximum %d",
			c.name, sn, c.group.lastSN)
	}
	for i, t := range tuples {
		if err := c.schema.Validate(t); err != nil {
			return nil, fmt.Errorf("chronicle %s: tuple %d: %w", c.name, i, err)
		}
	}
	rows := buf[:0]
	for _, t := range tuples {
		rows = append(rows, Row{SN: sn, Chronon: chronon, LSN: lsn, Vals: t})
	}
	c.group.lastSN = sn
	c.mu.Lock()
	c.lastSN = sn
	c.store(rows)
	c.mu.Unlock()
	return rows, nil
}

// store applies the retention policies while appending. The caller holds
// c.mu exclusively.
func (c *Chronicle) store(rows []Row) {
	switch {
	case c.retain == RetainNone:
		c.dropped += int64(len(rows))
		return
	case c.retain == RetainAll:
		c.rows = append(c.rows, rows...)
	default:
		c.rows = append(c.rows, rows...)
		if excess := len(c.rows) - int(c.retain); excess > 0 {
			c.trim(excess)
		}
	}
	if c.retainSpan > 0 && len(c.rows) > 0 {
		// Rows are chronon-ordered (chronons ride on monotone SNs); trim the
		// prefix older than the newest chronon minus the span.
		horizon := c.rows[len(c.rows)-1].Chronon - c.retainSpan
		cut := 0
		for cut < len(c.rows) && c.rows[cut].Chronon <= horizon {
			cut++
		}
		if cut > 0 {
			c.trim(cut)
		}
	}
}

// trim discards the oldest n retained rows, copying the suffix into a fresh
// slice so the discarded prefix becomes collectable instead of pinning the
// old backing array.
func (c *Chronicle) trim(n int) {
	c.dropped += int64(n)
	kept := make([]Row, len(c.rows)-n)
	copy(kept, c.rows[n:])
	c.rows = kept
}

// Len returns the number of retained rows.
func (c *Chronicle) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rows)
}

// Total returns the number of rows ever appended, retained or not.
func (c *Chronicle) Total() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dropped + int64(len(c.rows))
}

// Dropped returns the number of rows discarded by the retention window.
func (c *Chronicle) Dropped() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dropped
}

// LastSN returns the largest sequence number appended to this chronicle,
// or -1 if the chronicle is empty.
func (c *Chronicle) LastSN() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lastSN
}

// Scan visits every retained row in sequence order until fn returns false.
// fn runs under the chronicle read lock and must not append.
func (c *Chronicle) Scan(fn func(Row) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, r := range c.rows {
		if !fn(r) {
			return
		}
	}
}

// ScanRange visits retained rows with loSN <= SN < hiSN in sequence order.
// fn runs under the chronicle read lock and must not append.
func (c *Chronicle) ScanRange(loSN, hiSN int64, fn func(Row) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Rows are SN-sorted by construction; binary-search the start.
	lo, hi := 0, len(c.rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.rows[mid].SN < loSN {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, r := range c.rows[lo:] {
		if r.SN >= hiSN || !fn(r) {
			return
		}
	}
}

// Rows returns the retained rows. The result aliases internal storage and
// must not be modified; it exists for baselines and tests that run with
// appends quiesced. Concurrent readers use RowsCopy.
func (c *Chronicle) Rows() []Row { return c.rows }

// RowsCopy returns a copy of the retained rows taken under the chronicle
// read lock: safe to hold while appends continue, and a consistent image
// of the retention window at one instant.
func (c *Chronicle) RowsCopy() []Row {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.rows) == 0 {
		return nil
	}
	return append([]Row(nil), c.rows...)
}

// Restore loads retained rows and the dropped count during checkpoint
// recovery. Rows must be in ascending sequence order; the group high-water
// mark advances to cover them.
func (c *Chronicle) Restore(rows []Row, dropped int64) error {
	last := int64(-1)
	for i, r := range rows {
		if r.SN < last {
			return fmt.Errorf("chronicle %s: restore row %d out of order", c.name, i)
		}
		if err := c.schema.Validate(r.Vals); err != nil {
			return fmt.Errorf("chronicle %s: restore row %d: %w", c.name, i, err)
		}
		last = r.SN
	}
	c.mu.Lock()
	c.rows = append([]Row(nil), rows...)
	c.dropped = dropped
	if last >= 0 {
		c.lastSN = last
	}
	c.mu.Unlock()
	if last >= 0 {
		c.group.RestoreLastSN(last)
	}
	return nil
}

// Group is a collection of chronicles whose sequence numbers are drawn from
// the same domain, "along with the requirement that an insert into any
// chronicle in a chronicle group must have a sequence number greater than
// the sequence number of any tuple in the chronicle group" (Section 4).
// Union, difference, and sequence-number joins are permitted only between
// chronicles of the same group.
type Group struct {
	name    string
	lastSN  int64
	members []*Chronicle
}

// NewGroup creates an empty chronicle group.
func NewGroup(name string) *Group {
	return &Group{name: name, lastSN: -1}
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// LastSN returns the largest sequence number in the group, or -1 if empty.
func (g *Group) LastSN() int64 { return g.lastSN }

// NextSN returns a sequence number valid for the next append.
func (g *Group) NextSN() int64 { return g.lastSN + 1 }

// Members returns the group's chronicles in creation order.
func (g *Group) Members() []*Chronicle { return g.members }

// NewChronicle creates a chronicle in this group.
func (g *Group) NewChronicle(name string, schema *value.Schema, retain Retention) (*Chronicle, error) {
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("chronicle %s: schema must have at least one column", name)
	}
	if retain < RetainAll {
		return nil, fmt.Errorf("chronicle %s: invalid retention %d", name, retain)
	}
	for _, m := range g.members {
		if m.name == name {
			return nil, fmt.Errorf("chronicle %s: already exists in group %s", name, g.name)
		}
	}
	c := &Chronicle{name: name, schema: schema, group: g, retain: retain, lastSN: -1}
	g.members = append(g.members, c)
	return c, nil
}

// BatchPart is one chronicle's share of a simultaneous group append.
type BatchPart struct {
	C      *Chronicle
	Tuples []value.Tuple
}

// AppendBatch inserts tuples into several chronicles of the group as one
// simultaneous insert sharing a single new sequence number — the paper's
// "multiple tuples with the same sequence number can be inserted
// simultaneously". All parts must belong to this group. On any validation
// error nothing is stored.
func (g *Group) AppendBatch(sn, chronon int64, lsn uint64, parts []BatchPart) (map[*Chronicle][]Row, error) {
	out := make(map[*Chronicle][]Row, len(parts))
	if err := g.AppendBatchInto(sn, chronon, lsn, parts, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AppendBatchInto is AppendBatch filling a caller-supplied delta map, so
// the engine can reuse one map across batches. The stored rows slice is
// placed in the map directly (not copied again) — the chronicle's retention
// copy is the only copy between validation and view maintenance.
func (g *Group) AppendBatchInto(sn, chronon int64, lsn uint64, parts []BatchPart, out map[*Chronicle][]Row) error {
	if len(parts) == 0 {
		return fmt.Errorf("group %s: empty batch", g.name)
	}
	if sn <= g.lastSN {
		return fmt.Errorf("group %s: sequence number %d not greater than group maximum %d",
			g.name, sn, g.lastSN)
	}
	for _, p := range parts {
		if p.C.group != g {
			return fmt.Errorf("group %s: chronicle %s belongs to group %s", g.name, p.C.name, p.C.group.name)
		}
		if len(p.Tuples) == 0 {
			return fmt.Errorf("group %s: empty part for chronicle %s", g.name, p.C.name)
		}
		for i, t := range p.Tuples {
			if err := p.C.schema.Validate(t); err != nil {
				return fmt.Errorf("chronicle %s: tuple %d: %w", p.C.name, i, err)
			}
		}
	}
	for _, p := range parts {
		rows := make([]Row, len(p.Tuples))
		for i, t := range p.Tuples {
			rows[i] = Row{SN: sn, Chronon: chronon, LSN: lsn, Vals: t}
		}
		p.C.mu.Lock()
		p.C.store(rows)
		p.C.lastSN = sn
		p.C.mu.Unlock()
		if existing, ok := out[p.C]; ok {
			out[p.C] = append(existing, rows...)
		} else {
			out[p.C] = rows
		}
	}
	g.lastSN = sn
	return nil
}

// RestoreLastSN force-sets the group's high-water mark. It exists solely
// for WAL recovery, which replays appends in their original order.
func (g *Group) RestoreLastSN(sn int64) {
	if sn > g.lastSN {
		g.lastSN = sn
	}
}
