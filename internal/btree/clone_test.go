package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// treeEqualsRef asserts the tree's contents match the reference map
// exactly, including iteration order.
func treeEqualsRef(t *testing.T, label string, tr *Tree[int, string], ref map[int]string) {
	t.Helper()
	if tr.Len() != len(ref) {
		t.Fatalf("%s: Len = %d, want %d", label, tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("%s: Get(%d) = %q,%v want %q", label, k, got, ok, v)
		}
	}
	prev := -1 << 30
	count := 0
	tr.Ascend(func(k int, v string) bool {
		if k <= prev {
			t.Fatalf("%s: Ascend out of order at %d", label, k)
		}
		if want, ok := ref[k]; !ok || want != v {
			t.Fatalf("%s: Ascend saw %d=%q, ref has %q (present=%v)", label, k, v, want, ok)
		}
		prev = k
		count++
		return true
	})
	if count != len(ref) {
		t.Fatalf("%s: Ascend visited %d, want %d", label, count, len(ref))
	}
}

func TestCloneDivergence(t *testing.T) {
	tr := intTree()
	refA := map[int]string{}
	for i := 0; i < 5000; i++ {
		tr.Set(i, "orig")
		refA[i] = "orig"
	}
	cl := tr.Clone()
	refB := map[int]string{}
	for k, v := range refA {
		refB[k] = v
	}

	// Mutate parent and clone divergently: the parent overwrites and
	// deletes evens, the clone overwrites odds and inserts a fresh range.
	for i := 0; i < 5000; i += 2 {
		tr.Set(i, "parent")
		refA[i] = "parent"
	}
	for i := 0; i < 5000; i += 4 {
		tr.Delete(i)
		delete(refA, i)
	}
	for i := 1; i < 5000; i += 2 {
		cl.Set(i, "clone")
		refB[i] = "clone"
	}
	for i := 5000; i < 6000; i++ {
		cl.Set(i, "clone-new")
		refB[i] = "clone-new"
	}

	treeEqualsRef(t, "parent", tr, refA)
	treeEqualsRef(t, "clone", cl, refB)
}

func TestCloneIsImmutableSnapshot(t *testing.T) {
	// The snapshot pattern used by the view layer: clone, keep the clone
	// frozen, keep writing to the original. The clone must keep the exact
	// contents it had at clone time.
	tr := intTree()
	ref := map[int]string{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		k := rng.Intn(3000)
		tr.Set(k, "v1")
		ref[k] = "v1"
	}
	snap := tr.Clone()
	want := map[int]string{}
	for k, v := range ref {
		want[k] = v
	}
	for i := 0; i < 20000; i++ {
		k := rng.Intn(3000)
		if rng.Intn(3) == 0 {
			tr.Delete(k)
		} else {
			tr.Set(k, "v2")
		}
	}
	treeEqualsRef(t, "snapshot", snap, want)
}

func TestCloneChains(t *testing.T) {
	// Repeated clone-then-mutate, as the maintenance loop does once per
	// committed batch: each snapshot must pin its own generation.
	tr := intTree()
	ref := map[int]string{}
	type gen struct {
		snap *Tree[int, string]
		want map[int]string
	}
	var gens []gen
	rng := rand.New(rand.NewSource(3))
	for g := 0; g < 30; g++ {
		for i := 0; i < 200; i++ {
			k := rng.Intn(1500)
			if rng.Intn(4) == 0 {
				tr.Delete(k)
				delete(ref, k)
			} else {
				v := string(rune('a' + g%26))
				tr.Set(k, v)
				ref[k] = v
			}
		}
		want := make(map[int]string, len(ref))
		for k, v := range ref {
			want[k] = v
		}
		gens = append(gens, gen{tr.Clone(), want})
	}
	for i, g := range gens {
		if g.snap.Len() != len(g.want) {
			t.Fatalf("gen %d: Len = %d want %d", i, g.snap.Len(), len(g.want))
		}
		for k, v := range g.want {
			got, ok := g.snap.Get(k)
			if !ok || got != v {
				t.Fatalf("gen %d: Get(%d) = %q,%v want %q", i, k, got, ok, v)
			}
		}
	}
}

func TestCloneRandomOpsAgainstMaps(t *testing.T) {
	// Interleave random ops on parent and clone, comparing both against
	// independent reference maps throughout; re-clone periodically so
	// sharing is re-established mid-stream.
	rng := rand.New(rand.NewSource(1234))
	a := intTree()
	refA := map[int]string{}
	b := a.Clone()
	refB := map[int]string{}
	letters := "abcdefg"
	for op := 0; op < 60000; op++ {
		tr, ref := a, refA
		if op%2 == 1 {
			tr, ref = b, refB
		}
		k := rng.Intn(1000)
		switch rng.Intn(3) {
		case 0, 1:
			v := string(letters[rng.Intn(len(letters))])
			gotReplaced := tr.Set(k, v)
			_, wantReplaced := ref[k]
			if gotReplaced != wantReplaced {
				t.Fatalf("op %d: Set(%d) replaced=%v want %v", op, k, gotReplaced, wantReplaced)
			}
			ref[k] = v
		case 2:
			gotDeleted := tr.Delete(k)
			_, wantDeleted := ref[k]
			if gotDeleted != wantDeleted {
				t.Fatalf("op %d: Delete(%d)=%v want %v", op, k, gotDeleted, wantDeleted)
			}
			delete(ref, k)
		}
		if op%7919 == 0 {
			// Re-clone from whichever side just mutated.
			b = a.Clone()
			refB = map[int]string{}
			for k, v := range refA {
				refB[k] = v
			}
		}
	}
	treeEqualsRef(t, "parent", a, refA)
	treeEqualsRef(t, "clone", b, refB)
}

func TestQuickCloneDeleteRebalance(t *testing.T) {
	// Fuzz delete/rebalance on cloned trees: build a shared tree, clone,
	// then run the delete list against the clone only. The parent must be
	// untouched and the clone must match a reference map, exercising
	// rotate/merge paths on shared nodes.
	f := func(keys []int16, deletes []int16) bool {
		tr := intTree()
		ref := map[int]bool{}
		for _, k := range keys {
			tr.Set(int(k), "v")
			ref[int(k)] = true
		}
		parentLen := tr.Len()
		cl := tr.Clone()
		clRef := map[int]bool{}
		for k := range ref {
			clRef[k] = true
		}
		for _, k := range deletes {
			cl.Delete(int(k))
			delete(clRef, int(k))
		}
		// Parent unchanged.
		if tr.Len() != parentLen {
			return false
		}
		for k := range ref {
			if _, ok := tr.Get(k); !ok {
				return false
			}
		}
		// Clone matches its reference and stays sorted.
		if cl.Len() != len(clRef) {
			return false
		}
		prev := -1 << 20
		ok := true
		cl.Ascend(func(k int, _ string) bool {
			if k <= prev || !clRef[k] {
				ok = false
				return false
			}
			prev = k
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDescend(t *testing.T) {
	tr := intTree()
	for i := 0; i < 1000; i++ {
		tr.Set(i*2, "x")
	}
	var got []int
	tr.Descend(func(k int, _ string) bool {
		got = append(got, k)
		return len(got) < 5
	})
	want := []int{1998, 1996, 1994, 1992, 1990}
	if len(got) != len(want) {
		t.Fatalf("Descend = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Descend = %v, want %v", got, want)
		}
	}
	// Full descent is the exact reverse of ascent.
	var up, down []int
	tr.Ascend(func(k int, _ string) bool { up = append(up, k); return true })
	tr.Descend(func(k int, _ string) bool { down = append(down, k); return true })
	if len(up) != len(down) {
		t.Fatalf("Descend visited %d, Ascend %d", len(down), len(up))
	}
	for i := range up {
		if up[i] != down[len(down)-1-i] {
			t.Fatalf("Descend not reverse of Ascend at %d", i)
		}
	}
}

func TestDescendRangeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := intTree()
	present := map[int]bool{}
	for i := 0; i < 3000; i++ {
		k := rng.Intn(5000)
		tr.Set(k, "x")
		present[k] = true
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(5000)
		hi := lo + rng.Intn(500)
		var got []int
		tr.DescendRange(lo, hi, func(k int, _ string) bool {
			got = append(got, k)
			return true
		})
		var want []int
		for k := hi - 1; k >= lo; k-- {
			if present[k] {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("desc range [%d,%d): got %d keys, want %d (%v vs %v)", lo, hi, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("desc range [%d,%d): got %v, want %v", lo, hi, got, want)
			}
		}
	}
}

func TestDescendRangeEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 500; i++ {
		tr.Set(i, "x")
	}
	var got []int
	tr.DescendRange(100, 400, func(k int, _ string) bool {
		got = append(got, k)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 399 || got[1] != 398 || got[2] != 397 {
		t.Fatalf("DescendRange early stop = %v", got)
	}
}

func TestAscendLessThan(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Set(i*3, "x")
	}
	var got []int
	tr.AscendLessThan(10, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 4 || got[0] != 0 || got[3] != 9 {
		t.Fatalf("AscendLessThan = %v", got)
	}
	// Randomized cross-check against AscendRange from min.
	rng := rand.New(rand.NewSource(5))
	tr2 := intTree()
	for i := 0; i < 2000; i++ {
		tr2.Set(rng.Intn(4000), "x")
	}
	for trial := 0; trial < 50; trial++ {
		hi := rng.Intn(4000)
		var a, b []int
		tr2.AscendLessThan(hi, func(k int, _ string) bool { a = append(a, k); return true })
		tr2.Ascend(func(k int, _ string) bool {
			if k >= hi {
				return false
			}
			b = append(b, k)
			return true
		})
		if len(a) != len(b) {
			t.Fatalf("hi=%d: AscendLessThan %d keys, want %d", hi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("hi=%d: mismatch %v vs %v", hi, a, b)
			}
		}
		if !sort.IntsAreSorted(a) {
			t.Fatalf("AscendLessThan not sorted: %v", a)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	tr := intTree()
	for i := 0; i < 1<<16; i++ {
		tr.Set(i, "v")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tr.Clone()
		_ = c
		// One write after each clone pays the path-copy cost that the
		// maintenance loop pays per batch.
		tr.Set(i&(1<<16-1), "w")
	}
}
