// Package btree implements an in-memory B-tree keyed by an arbitrary
// comparison function.
//
// The chronicle model's complexity results are stated "modulo index look
// ups" (Section 3) and Theorem 4.4 bounds view maintenance by
// O(t·log|V|); this tree is the ordered index behind relation key lookups,
// view group stores, and range scans that realize those bounds.
//
// Trees support cheap copy-on-write clones: Clone shares every node with
// the original in O(1), and subsequent mutations on either tree copy only
// the root-to-leaf path they touch. A clone that is never mutated again is
// an immutable snapshot that concurrent readers may traverse without any
// synchronization while the original keeps absorbing writes.
package btree

// degree is the minimum number of children of an internal node. Nodes hold
// between degree-1 and 2*degree-1 items. 32 keeps nodes cache-friendly
// without deep trees.
const degree = 32

const (
	maxItems = 2*degree - 1
	minItems = degree - 1
)

// copyTag is an ownership token. Every node records the tag of the tree
// that created it; a tree may mutate a node in place only when the tags
// match. Clone hands both trees fresh tags, so all shared nodes become
// frozen and the first writer to reach one copies it.
type copyTag struct{ _ byte }

// Tree is a B-tree mapping keys of type K to values of type V. The zero
// value is not usable; construct trees with New.
type Tree[K, V any] struct {
	less func(a, b K) bool
	root *node[K, V]
	size int
	cow  *copyTag
}

type item[K, V any] struct {
	key K
	val V
}

type node[K, V any] struct {
	items    []item[K, V]
	children []*node[K, V] // nil for leaves
	cow      *copyTag      // owner tag; mutable only by the tree holding it
}

// New returns an empty tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less, cow: new(copyTag)}
}

// Clone returns a copy of the tree sharing all nodes with the receiver.
// The clone costs O(1); afterwards each tree copies any shared node before
// mutating it (path copying), so the two diverge without ever observing
// each other's writes. A clone that is not mutated further is safe for
// concurrent lock-free reads even while the original continues to change.
func (t *Tree[K, V]) Clone() *Tree[K, V] {
	c := *t
	// Fresh tags on both sides orphan every existing node: neither tree
	// owns them any more, so the first mutation on either side copies.
	t.cow = new(copyTag)
	c.cow = new(copyTag)
	return &c
}

// mutable returns a node the tree may modify in place, copying n's items
// and child pointers into a fresh node when n is shared with a clone.
func (t *Tree[K, V]) mutable(n *node[K, V]) *node[K, V] {
	if n.cow == t.cow {
		return n
	}
	m := &node[K, V]{cow: t.cow}
	m.items = append(make([]item[K, V], 0, len(n.items)), n.items...)
	if n.children != nil {
		m.children = append(make([]*node[K, V], 0, len(n.children)), n.children...)
	}
	return m
}

// mutableChild makes n.children[i] mutable and re-links it. n itself must
// already be mutable.
func (t *Tree[K, V]) mutableChild(n *node[K, V], i int) *node[K, V] {
	c := t.mutable(n.children[i])
	n.children[i] = c
	return c
}

// Len returns the number of entries in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		i, eq := t.search(n, key)
		if eq {
			return n.items[i].val, true
		}
		if n.children == nil {
			break
		}
		n = n.children[i]
	}
	var zero V
	return zero, false
}

// Set inserts key with value val, replacing any existing entry. It reports
// whether the key was already present.
func (t *Tree[K, V]) Set(key K, val V) (replaced bool) {
	if t.root == nil {
		t.root = &node[K, V]{items: []item[K, V]{{key, val}}, cow: t.cow}
		t.size = 1
		return false
	}
	t.root = t.mutable(t.root)
	if len(t.root.items) >= maxItems {
		old := t.root
		t.root = &node[K, V]{children: []*node[K, V]{old}, cow: t.cow}
		t.splitChild(t.root, 0)
	}
	replaced = t.insertNonFull(t.root, key, val)
	if !replaced {
		t.size++
	}
	return replaced
}

// Delete removes key from the tree and reports whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if t.root == nil {
		return false
	}
	t.root = t.mutable(t.root)
	deleted := t.delete(t.root, key)
	if len(t.root.items) == 0 && t.root.children != nil {
		t.root = t.root.children[0]
	}
	if t.root != nil && len(t.root.items) == 0 && t.root.children == nil {
		t.root = nil
	}
	if deleted {
		t.size--
	}
	return deleted
}

// Min returns the smallest entry.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var k K
		var v V
		return k, v, false
	}
	n := t.root
	for n.children != nil {
		n = n.children[0]
	}
	it := n.items[0]
	return it.key, it.val, true
}

// Max returns the largest entry.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var k K
		var v V
		return k, v, false
	}
	n := t.root
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	it := n.items[len(n.items)-1]
	return it.key, it.val, true
}

// Ascend visits every entry in ascending key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i, it := range n.items {
		if n.children != nil && !t.ascend(n.children[i], fn) {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if n.children != nil {
		return t.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendRange visits entries with lo <= key < hi in ascending order until fn
// returns false.
func (t *Tree[K, V]) AscendRange(lo, hi K, fn func(key K, val V) bool) {
	t.ascendRange(t.root, lo, hi, fn)
}

func (t *Tree[K, V]) ascendRange(n *node[K, V], lo, hi K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	start, _ := t.search(n, lo)
	for i := start; i < len(n.items); i++ {
		it := n.items[i]
		if !t.less(it.key, hi) {
			// Everything at and after it.key is >= hi; still descend into
			// the child to its left for in-range keys.
			if n.children != nil {
				return t.ascendRange(n.children[i], lo, hi, fn)
			}
			return true
		}
		if n.children != nil && !t.ascendRange(n.children[i], lo, hi, fn) {
			return false
		}
		if !t.less(it.key, lo) && !fn(it.key, it.val) {
			return false
		}
	}
	if n.children != nil {
		return t.ascendRange(n.children[len(n.children)-1], lo, hi, fn)
	}
	return true
}

// AscendGreaterOrEqual visits entries with key >= lo in ascending order.
func (t *Tree[K, V]) AscendGreaterOrEqual(lo K, fn func(key K, val V) bool) {
	t.ascendGE(t.root, lo, fn)
}

func (t *Tree[K, V]) ascendGE(n *node[K, V], lo K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	start, _ := t.search(n, lo)
	for i := start; i < len(n.items); i++ {
		if n.children != nil && !t.ascendGE(n.children[i], lo, fn) {
			return false
		}
		it := n.items[i]
		if !t.less(it.key, lo) && !fn(it.key, it.val) {
			return false
		}
	}
	if n.children != nil {
		return t.ascendGE(n.children[len(n.children)-1], lo, fn)
	}
	return true
}

// AscendLessThan visits entries with key < hi in ascending order until fn
// returns false.
func (t *Tree[K, V]) AscendLessThan(hi K, fn func(key K, val V) bool) {
	t.ascendLT(t.root, hi, fn)
}

func (t *Tree[K, V]) ascendLT(n *node[K, V], hi K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i, it := range n.items {
		if !t.less(it.key, hi) {
			if n.children != nil {
				return t.ascendLT(n.children[i], hi, fn)
			}
			return true
		}
		if n.children != nil && !t.ascendLT(n.children[i], hi, fn) {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if n.children != nil {
		return t.ascendLT(n.children[len(n.children)-1], hi, fn)
	}
	return true
}

// Descend visits every entry in descending key order until fn returns
// false.
func (t *Tree[K, V]) Descend(fn func(key K, val V) bool) {
	t.descend(t.root, fn)
}

func (t *Tree[K, V]) descend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if n.children != nil && !t.descend(n.children[len(n.children)-1], fn) {
		return false
	}
	for i := len(n.items) - 1; i >= 0; i-- {
		it := n.items[i]
		if !fn(it.key, it.val) {
			return false
		}
		if n.children != nil && !t.descend(n.children[i], fn) {
			return false
		}
	}
	return true
}

// DescendRange visits entries with lo <= key < hi in descending key order
// until fn returns false — the same half-open window as AscendRange,
// walked newest-first.
func (t *Tree[K, V]) DescendRange(lo, hi K, fn func(key K, val V) bool) {
	t.descendRange(t.root, lo, hi, fn)
}

func (t *Tree[K, V]) descendRange(n *node[K, V], lo, hi K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	// end is the first index with key >= hi: items[end-1] and below may be
	// in range, and children[end] can still hold keys below hi.
	end, _ := t.search(n, hi)
	if n.children != nil && !t.descendRange(n.children[end], lo, hi, fn) {
		return false
	}
	for i := end - 1; i >= 0; i-- {
		it := n.items[i]
		if t.less(it.key, lo) {
			// it.key and everything left of it is below the window.
			return true
		}
		if !fn(it.key, it.val) {
			return false
		}
		if n.children != nil && !t.descendRange(n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}

// search returns the index of the first item >= key in n, and whether that
// item equals key.
func (t *Tree[K, V]) search(n *node[K, V], key K) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(n.items[mid].key, key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && !t.less(key, n.items[lo].key) {
		return lo, true
	}
	return lo, false
}

// splitChild splits the full child at index i of parent. parent must be
// mutable; the child is made mutable here before its items move.
func (t *Tree[K, V]) splitChild(parent *node[K, V], i int) {
	child := t.mutableChild(parent, i)
	mid := len(child.items) / 2
	midItem := child.items[mid]

	right := &node[K, V]{
		items: append([]item[K, V](nil), child.items[mid+1:]...),
		cow:   t.cow,
	}
	if child.children != nil {
		right.children = append([]*node[K, V](nil), child.children[mid+1:]...)
		child.children = child.children[: mid+1 : mid+1]
	}
	child.items = child.items[:mid:mid]

	parent.items = append(parent.items, item[K, V]{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = midItem

	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

// insertNonFull inserts into the subtree rooted at n, which must be
// mutable and not full; every child it descends into is made mutable
// first, so the whole root-to-leaf path is owned by this tree.
func (t *Tree[K, V]) insertNonFull(n *node[K, V], key K, val V) (replaced bool) {
	for {
		i, eq := t.search(n, key)
		if eq {
			n.items[i].val = val
			return true
		}
		if n.children == nil {
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[K, V]{key, val}
			return false
		}
		if len(n.children[i].items) >= maxItems {
			t.splitChild(n, i)
			if t.less(n.items[i].key, key) {
				i++
			} else if !t.less(key, n.items[i].key) {
				n.items[i].val = val
				return true
			}
		}
		n = t.mutableChild(n, i)
	}
}

// delete removes key from the subtree rooted at n, which must be mutable.
func (t *Tree[K, V]) delete(n *node[K, V], key K) bool {
	i, eq := t.search(n, key)
	if n.children == nil {
		if !eq {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if eq {
		// Replace with predecessor from the left subtree, then delete it.
		child := t.mutableChild(n, i)
		if len(child.items) > minItems {
			pred := t.maxItem(child)
			n.items[i] = pred
			return t.delete(child, pred.key)
		}
		rchild := t.mutableChild(n, i+1)
		if len(rchild.items) > minItems {
			succ := t.minItem(rchild)
			n.items[i] = succ
			return t.delete(rchild, succ.key)
		}
		t.mergeChildren(n, i)
		return t.delete(n.children[i], key)
	}
	child := t.mutableChild(n, i)
	if len(child.items) <= minItems {
		i = t.rebalance(n, i)
		child = n.children[i]
	}
	return t.delete(child, key)
}

func (t *Tree[K, V]) maxItem(n *node[K, V]) item[K, V] {
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (t *Tree[K, V]) minItem(n *node[K, V]) item[K, V] {
	for n.children != nil {
		n = n.children[0]
	}
	return n.items[0]
}

// rebalance ensures n.children[i] has more than minItems items, borrowing
// from a sibling or merging. n and n.children[i] must be mutable. It
// returns the (possibly shifted) child index; the child at that index is
// mutable on return.
func (t *Tree[K, V]) rebalance(n *node[K, V], i int) int {
	if i > 0 && len(n.children[i-1].items) > minItems {
		// Rotate right: move separator down, left sibling's max up.
		child, left := n.children[i], t.mutableChild(n, i-1)
		child.items = append(child.items, item[K, V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if left.children != nil {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > minItems {
		// Rotate left: move separator down, right sibling's min up.
		child, right := n.children[i], t.mutableChild(n, i+1)
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if right.children != nil {
			moved := right.children[0]
			right.children = append(right.children[:0], right.children[1:]...)
			child.children = append(child.children, moved)
		}
		return i
	}
	if i > 0 {
		t.mergeChildren(n, i-1)
		return i - 1
	}
	t.mergeChildren(n, i)
	return i
}

// mergeChildren merges n.children[i], n.items[i], and n.children[i+1] into a
// single child at position i. n must be mutable; both children are made
// mutable here.
func (t *Tree[K, V]) mergeChildren(n *node[K, V], i int) {
	left := t.mutableChild(n, i)
	right := n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// DeleteRange removes every key in the half-open window [lo, hi) and
// returns how many were removed. hasLo/hasHi mark which bounds are
// present; an absent bound is unbounded on that side. Keys are collected
// first and then deleted one by one, so the walk never observes its own
// mutations — block eviction in the paged view store deletes one block's
// key run this way.
func (t *Tree[K, V]) DeleteRange(lo, hi K, hasLo, hasHi bool) int {
	keys := make([]K, 0, 16)
	collect := func(k K, _ V) bool { keys = append(keys, k); return true }
	switch {
	case hasLo && hasHi:
		t.AscendRange(lo, hi, collect)
	case hasLo:
		t.AscendGreaterOrEqual(lo, collect)
	case hasHi:
		t.AscendLessThan(hi, collect)
	default:
		t.Ascend(collect)
	}
	for _, k := range keys {
		t.Delete(k)
	}
	return len(keys)
}
