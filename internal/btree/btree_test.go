package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty tree")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty tree reported true")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree")
	}
	count := 0
	tr.Ascend(func(int, string) bool { count++; return true })
	if count != 0 {
		t.Error("Ascend visited entries of empty tree")
	}
}

func TestSetGetReplace(t *testing.T) {
	tr := intTree()
	if tr.Set(5, "a") {
		t.Error("first Set reported replaced")
	}
	if !tr.Set(5, "b") {
		t.Error("second Set did not report replaced")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if v, ok := tr.Get(5); !ok || v != "b" {
		t.Errorf("Get = %q, %v", v, ok)
	}
}

func TestLargeInsertDeleteAscending(t *testing.T) {
	const n = 10000
	tr := intTree()
	for i := 0; i < n; i++ {
		tr.Set(i, "v")
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		if _, ok := tr.Get(i); !ok {
			t.Fatalf("missing key %d", i)
		}
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
}

func TestRandomOpsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := intTree()
	ref := map[int]string{}
	letters := "abcdefg"
	for op := 0; op < 50000; op++ {
		k := rng.Intn(2000)
		switch rng.Intn(3) {
		case 0, 1:
			v := string(letters[rng.Intn(len(letters))])
			gotReplaced := tr.Set(k, v)
			_, wantReplaced := ref[k]
			if gotReplaced != wantReplaced {
				t.Fatalf("op %d: Set(%d) replaced=%v want %v", op, k, gotReplaced, wantReplaced)
			}
			ref[k] = v
		case 2:
			gotDeleted := tr.Delete(k)
			_, wantDeleted := ref[k]
			if gotDeleted != wantDeleted {
				t.Fatalf("op %d: Delete(%d)=%v want %v", op, k, gotDeleted, wantDeleted)
			}
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %q,%v want %q", k, got, ok, v)
		}
	}
	// Ascend yields sorted keys matching the reference exactly.
	var keys []int
	tr.Ascend(func(k int, v string) bool {
		keys = append(keys, k)
		if ref[k] != v {
			t.Fatalf("Ascend value mismatch at %d", k)
		}
		return true
	})
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Ascend keys not sorted")
	}
	if len(keys) != len(ref) {
		t.Fatalf("Ascend visited %d keys, want %d", len(keys), len(ref))
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree()
	for _, k := range []int{50, 20, 90, 10, 70} {
		tr.Set(k, "x")
	}
	if k, _, ok := tr.Min(); !ok || k != 10 {
		t.Errorf("Min = %d, %v", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 90 {
		t.Errorf("Max = %d, %v", k, ok)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Set(i, "x")
	}
	count := 0
	tr.Ascend(func(k int, _ string) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("visited %d, want 10", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := intTree()
	for i := 0; i < 1000; i++ {
		tr.Set(i*2, "x") // even keys 0..1998
	}
	var got []int
	tr.AscendRange(101, 111, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int{102, 104, 106, 108, 110}
	if len(got) != len(want) {
		t.Fatalf("AscendRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange = %v, want %v", got, want)
		}
	}
	// Range with lo == existing key includes it; hi exclusive.
	got = got[:0]
	tr.AscendRange(100, 104, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 100 || got[1] != 102 {
		t.Fatalf("AscendRange inclusive-lo = %v", got)
	}
}

func TestAscendRangeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := intTree()
	present := map[int]bool{}
	for i := 0; i < 3000; i++ {
		k := rng.Intn(5000)
		tr.Set(k, "x")
		present[k] = true
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(5000)
		hi := lo + rng.Intn(500)
		var got []int
		tr.AscendRange(lo, hi, func(k int, _ string) bool {
			got = append(got, k)
			return true
		})
		var want []int
		for k := lo; k < hi; k++ {
			if present[k] {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d): got %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range [%d,%d): got %v, want %v", lo, hi, got, want)
			}
		}
	}
}

func TestAscendGreaterOrEqual(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Set(i*3, "x")
	}
	var got []int
	tr.AscendGreaterOrEqual(290, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != 291 || got[2] != 297 {
		t.Fatalf("AscendGE = %v", got)
	}
}

func TestQuickInsertDeleteInvariant(t *testing.T) {
	f := func(keys []int16, deletes []int16) bool {
		tr := intTree()
		ref := map[int]bool{}
		for _, k := range keys {
			tr.Set(int(k), "v")
			ref[int(k)] = true
		}
		for _, k := range deletes {
			tr.Delete(int(k))
			delete(ref, int(k))
		}
		if tr.Len() != len(ref) {
			return false
		}
		prev := -1 << 20
		ok := true
		tr.Ascend(func(k int, _ string) bool {
			if k <= prev || !ref[k] {
				ok = false
				return false
			}
			prev = k
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](func(a, b string) bool { return a < b })
	words := []string{"pear", "apple", "fig", "banana", "cherry"}
	for i, w := range words {
		tr.Set(w, i)
	}
	if v, ok := tr.Get("fig"); !ok || v != 2 {
		t.Errorf("Get(fig) = %d, %v", v, ok)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) {
		t.Errorf("not sorted: %v", got)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Set(i, "v")
	}
}

func BenchmarkGet(b *testing.B) {
	tr := intTree()
	for i := 0; i < 1<<20; i++ {
		tr.Set(i, "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i & (1<<20 - 1))
	}
}

func TestDeleteRange(t *testing.T) {
	newT := func() *Tree[int, int] {
		tr := New[int, int](func(a, b int) bool { return a < b })
		for i := 0; i < 100; i++ {
			tr.Set(i, i)
		}
		return tr
	}
	tr := newT()
	if n := tr.DeleteRange(10, 20, true, true); n != 10 {
		t.Fatalf("DeleteRange[10,20) = %d, want 10", n)
	}
	if tr.Len() != 90 {
		t.Fatalf("Len = %d, want 90", tr.Len())
	}
	if _, ok := tr.Get(10); ok {
		t.Fatal("key 10 survived DeleteRange")
	}
	if _, ok := tr.Get(20); !ok {
		t.Fatal("key 20 (exclusive hi) deleted")
	}
	tr = newT()
	if n := tr.DeleteRange(90, 0, true, false); n != 10 {
		t.Fatalf("DeleteRange[90,∞) = %d, want 10", n)
	}
	tr = newT()
	if n := tr.DeleteRange(0, 10, false, true); n != 10 {
		t.Fatalf("DeleteRange(-∞,10) = %d, want 10", n)
	}
	tr = newT()
	if n := tr.DeleteRange(0, 0, false, false); n != 100 || tr.Len() != 0 {
		t.Fatalf("DeleteRange unbounded = %d len=%d, want 100, 0", n, tr.Len())
	}
	// A clone made before the delete is unaffected (COW holds).
	tr = newT()
	snap := tr.Clone()
	tr.DeleteRange(0, 50, true, true)
	if snap.Len() != 100 {
		t.Fatalf("clone Len = %d after DeleteRange on source, want 100", snap.Len())
	}
}
