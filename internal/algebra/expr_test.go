package algebra

import (
	"strings"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/value"
)

// fixture is the shared test scenario: a telecom-ish chronicle group with
// two chronicles and a keyed customer relation with version history.
type fixture struct {
	group    *chronicle.Group
	calls    *chronicle.Chronicle // (acct string, minutes int)
	payments *chronicle.Chronicle // (acct string, amount int)
	cust     *relation.Relation   // (acct string KEY, state string, bonus int)
	lsn      uint64
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	g := chronicle.NewGroup("telecom")
	calls, err := g.NewChronicle("calls", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
	), chronicle.RetainAll)
	if err != nil {
		t.Fatal(err)
	}
	payments, err := g.NewChronicle("payments", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "amount", Kind: value.KindInt},
	), chronicle.RetainAll)
	if err != nil {
		t.Fatal(err)
	}
	cust, err := relation.New("customers", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "state", Kind: value.KindString},
		value.Column{Name: "bonus", Kind: value.KindInt},
	), []int{0}, true)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{group: g, calls: calls, payments: payments, cust: cust}
}

func (f *fixture) nextLSN() uint64 { f.lsn++; return f.lsn }

func (f *fixture) upsertCust(t testing.TB, acct, state string, bonus int64) {
	t.Helper()
	if err := f.cust.Upsert(f.nextLSN(), value.Tuple{value.Str(acct), value.Str(state), value.Int(bonus)}); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) appendCall(t testing.TB, acct string, minutes int64) BatchDelta {
	t.Helper()
	rows, err := f.calls.Append(f.group.NextSN(), f.group.NextSN()*1000, f.nextLSN(),
		[]value.Tuple{{value.Str(acct), value.Int(minutes)}})
	if err != nil {
		t.Fatal(err)
	}
	return BatchDelta{f.calls: rows}
}

func (f *fixture) appendBoth(t testing.TB, acct string, minutes, amount int64) BatchDelta {
	t.Helper()
	got, err := f.group.AppendBatch(f.group.NextSN(), f.group.NextSN()*1000, f.nextLSN(), []chronicle.BatchPart{
		{C: f.calls, Tuples: []value.Tuple{{value.Str(acct), value.Int(minutes)}}},
		{C: f.payments, Tuples: []value.Tuple{{value.Str(acct), value.Int(amount)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return BatchDelta{f.calls: got[f.calls], f.payments: got[f.payments]}
}

func TestScanNode(t *testing.T) {
	f := newFixture(t)
	s := NewScan(f.calls)
	if s.Schema() != f.calls.Schema() || s.Group() != f.group {
		t.Error("scan metadata mismatch")
	}
	if s.String() != "calls" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSelectValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewSelect(NewScan(f.calls), pred.Or(pred.ColConst(5, pred.Eq, value.Int(1)))); err == nil {
		t.Error("out-of-range predicate accepted")
	}
	s, err := NewSelect(NewScan(f.calls), pred.Or(pred.ColConst(1, pred.Gt, value.Int(10))))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "minutes > 10") {
		t.Errorf("String = %q", s.String())
	}
}

func TestProjectValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewProject(NewScan(f.calls), nil); err == nil {
		t.Error("empty projection accepted")
	}
	if _, err := NewProject(NewScan(f.calls), []int{9}); err == nil {
		t.Error("out-of-range projection accepted")
	}
	p, err := NewProject(NewScan(f.calls), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 1 || p.Schema().Col(0).Name != "minutes" {
		t.Errorf("projected schema = %v", p.Schema())
	}
}

func TestUnionDiffValidation(t *testing.T) {
	f := newFixture(t)
	callsScan, paymentsScan := NewScan(f.calls), NewScan(f.payments)
	// Same group, different type: rejected? Schemas differ in column name.
	if _, err := NewUnion(callsScan, paymentsScan); err == nil {
		t.Error("union of different types accepted")
	}
	if _, err := NewDiff(callsScan, paymentsScan); err == nil {
		t.Error("difference of different types accepted")
	}
	// Same type via projection onto acct.
	pc, _ := NewProject(callsScan, []int{0})
	pp, _ := NewProject(paymentsScan, []int{0})
	if _, err := NewUnion(pc, pp); err != nil {
		t.Errorf("compatible union rejected: %v", err)
	}
	// Cross-group operands rejected.
	other := chronicle.NewGroup("other")
	oc, _ := other.NewChronicle("calls2", f.calls.Schema(), chronicle.RetainAll)
	if _, err := NewUnion(callsScan, NewScan(oc)); err == nil {
		t.Error("cross-group union accepted")
	}
	if _, err := NewDiff(callsScan, NewScan(oc)); err == nil {
		t.Error("cross-group difference accepted")
	}
	if _, err := NewJoinSN(callsScan, NewScan(oc)); err == nil {
		t.Error("cross-group SN-join accepted")
	}
}

func TestJoinSNSchema(t *testing.T) {
	f := newFixture(t)
	j, err := NewJoinSN(NewScan(f.calls), NewScan(f.payments))
	if err != nil {
		t.Fatal(err)
	}
	// acct clashes and is prefixed on the right side.
	names := j.Schema().Names()
	want := []string{"acct", "minutes", "r.acct", "amount"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("join schema = %v, want %v", names, want)
		}
	}
}

func TestGroupBySNValidation(t *testing.T) {
	f := newFixture(t)
	scan := NewScan(f.calls)
	if _, err := NewGroupBySN(scan, []int{9}, []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}}); err == nil {
		t.Error("out-of-range group column accepted")
	}
	if _, err := NewGroupBySN(scan, nil, nil); err == nil {
		t.Error("no aggregations accepted")
	}
	if _, err := NewGroupBySN(scan, nil, []aggregate.Spec{{Func: aggregate.Sum, Col: 9, Name: "s"}}); err == nil {
		t.Error("out-of-range agg column accepted")
	}
	if _, err := NewGroupBySN(scan, nil, []aggregate.Spec{{Func: aggregate.Sum, Col: 1}}); err == nil {
		t.Error("unnamed aggregation accepted")
	}
	g, err := NewGroupBySN(scan, []int{0}, []aggregate.Spec{
		{Func: aggregate.Sum, Col: 1, Name: "total"},
		{Func: aggregate.Count, Col: -1, Name: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := g.Schema().Names()
	if names[0] != "acct" || names[1] != "total" || names[2] != "n" {
		t.Errorf("groupby schema = %v", names)
	}
	if g.Schema().Col(1).Kind != value.KindInt || g.Schema().Col(2).Kind != value.KindInt {
		t.Errorf("groupby kinds = %v", g.Schema())
	}
}

func TestJoinRelValidation(t *testing.T) {
	f := newFixture(t)
	scan := NewScan(f.calls)
	if _, err := NewJoinRel(scan, nil, []int{0}, []int{0}); err == nil {
		t.Error("nil relation accepted")
	}
	if _, err := NewJoinRel(scan, f.cust, nil, nil); err == nil {
		t.Error("empty join columns accepted")
	}
	if _, err := NewJoinRel(scan, f.cust, []int{0}, []int{0, 1}); err == nil {
		t.Error("mismatched column lists accepted")
	}
	if _, err := NewJoinRel(scan, f.cust, []int{9}, []int{0}); err == nil {
		t.Error("out-of-range chronicle column accepted")
	}
	if _, err := NewJoinRel(scan, f.cust, []int{0}, []int{9}); err == nil {
		t.Error("out-of-range relation column accepted")
	}
	if _, err := NewJoinRel(scan, f.cust, []int{1}, []int{0}); err == nil {
		t.Error("kind-mismatched join accepted (int vs string)")
	}
	j, err := NewJoinRel(scan, f.cust, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !j.OnKey() {
		t.Error("join on key column not recognized")
	}
	nk, err := NewJoinRel(scan, f.cust, []int{0}, []int{1}) // state is not the key
	if err != nil {
		t.Fatal(err)
	}
	if nk.OnKey() {
		t.Error("non-key join misrecognized as key join")
	}
	if !strings.Contains(nk.String(), "non-key") {
		t.Errorf("non-key join String = %q", nk.String())
	}
}

func TestCrossRelSchema(t *testing.T) {
	f := newFixture(t)
	c, err := NewCrossRel(NewScan(f.calls), f.cust)
	if err != nil {
		t.Fatal(err)
	}
	names := c.Schema().Names()
	want := []string{"acct", "minutes", "customers.acct", "state", "bonus"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("cross schema = %v, want %v", names, want)
		}
	}
	if _, err := NewCrossRel(NewScan(f.calls), nil); err == nil {
		t.Error("nil relation accepted")
	}
}

func TestAnalyzeClassification(t *testing.T) {
	f := newFixture(t)
	scan := NewScan(f.calls)

	// CA1: selection + grouping only.
	sel, _ := NewSelect(scan, pred.Or(pred.ColConst(1, pred.Gt, value.Int(0))))
	g1, _ := NewGroupBySN(sel, []int{0}, []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "s"}})
	info := Analyze(g1)
	if info.Lang != LangCA1 || info.IMClass() != IMConstant {
		t.Errorf("CA1 expr classified as %s/%s", info.Lang, info.IMClass())
	}
	if info.Unions != 0 || info.Joins != 0 {
		t.Errorf("u=%d j=%d", info.Unions, info.Joins)
	}

	// CA⋈: key join.
	jk, _ := NewJoinRel(scan, f.cust, []int{0}, []int{0})
	info = Analyze(jk)
	if info.Lang != LangCAKey || info.IMClass() != IMLogR {
		t.Errorf("CA⋈ expr classified as %s/%s", info.Lang, info.IMClass())
	}
	if info.Joins != 1 {
		t.Errorf("j = %d", info.Joins)
	}

	// CA: cross product.
	cr, _ := NewCrossRel(scan, f.cust)
	info = Analyze(cr)
	if info.Lang != LangCA || info.IMClass() != IMRk {
		t.Errorf("CA expr classified as %s/%s", info.Lang, info.IMClass())
	}

	// CA: non-key join.
	nk, _ := NewJoinRel(scan, f.cust, []int{0}, []int{1})
	if got := Analyze(nk).Lang; got != LangCA {
		t.Errorf("non-key join classified as %s", got)
	}

	// Union and join counting on a compound expression.
	pc, _ := NewProject(NewScan(f.calls), []int{0})
	pp, _ := NewProject(NewScan(f.payments), []int{0})
	u, _ := NewUnion(pc, pp)
	j, _ := NewJoinSN(u, pc)
	info = Analyze(j)
	if info.Unions != 1 || info.Joins != 1 {
		t.Errorf("u=%d j=%d, want 1,1", info.Unions, info.Joins)
	}
	if len(info.Chronicles) != 2 {
		t.Errorf("chronicles = %d", len(info.Chronicles))
	}
	// A key join downstream of a cross product stays CA.
	mix, _ := NewJoinRel(cr, f.cust, []int{0}, []int{0})
	if got := Analyze(mix).Lang; got != LangCA {
		t.Errorf("cross+keyjoin classified as %s", got)
	}
}

func TestLangAndIMClassStrings(t *testing.T) {
	if LangCA1.String() != "CA1" || LangCAKey.String() != "CA⋈" || LangCA.String() != "CA" {
		t.Error("Lang strings")
	}
	if IMConstant.String() != "IM-Constant" || IMLogR.String() != "IM-log(R)" ||
		IMRk.String() != "IM-R^k" || IMCk.String() != "IM-C^k" {
		t.Error("IMClass strings")
	}
}
