// Shared-delta planning: common-subexpression elimination across the view
// expressions of one engine. Views over the same group overwhelmingly share
// structure — the same σ filter, the same Π column list, the same key-join
// against a dimension relation — and the Δ-rules of Theorem 4.1 are purely
// structural, so two structurally identical subexpressions have identical
// deltas for every batch. A SharedPlan hash-conses every view expression
// into a DAG of interned nodes; per batch, each node's delta is computed at
// most once and fanned out to every view that consumes it, turning
// per-append maintenance cost from Σ(per-view tree cost) into the cost of
// the distinct subexpressions.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
)

// Fingerprint returns a structural key for an expression: two nodes with
// equal fingerprints compute equal deltas on every batch (and equal results
// under reference evaluation). Leaves key on object identity (the chronicle
// or relation pointer — names can be reused across engine generations, the
// objects cannot), interior nodes on operator plus parameters plus child
// fingerprints. Predicate constants are encoded with the type-tagged key
// encoding so `'1'` and `1` never collide.
func Fingerprint(n Node) string {
	var sb strings.Builder
	fingerprint(n, &sb)
	return sb.String()
}

func fingerprint(n Node, sb *strings.Builder) {
	switch n := n.(type) {
	case *Scan:
		fmt.Fprintf(sb, "scan(%p)", n.C)
	case *Select:
		sb.WriteString("sel[")
		predFingerprint(n.P, sb)
		sb.WriteString("](")
		fingerprint(n.In, sb)
		sb.WriteByte(')')
	case *Project:
		fmt.Fprintf(sb, "proj%v(", n.Cols)
		fingerprint(n.In, sb)
		sb.WriteByte(')')
	case *Union:
		sb.WriteString("union(")
		fingerprint(n.L, sb)
		sb.WriteByte(',')
		fingerprint(n.R, sb)
		sb.WriteByte(')')
	case *Diff:
		sb.WriteString("diff(")
		fingerprint(n.L, sb)
		sb.WriteByte(',')
		fingerprint(n.R, sb)
		sb.WriteByte(')')
	case *JoinSN:
		sb.WriteString("joinsn(")
		fingerprint(n.L, sb)
		sb.WriteByte(',')
		fingerprint(n.R, sb)
		sb.WriteByte(')')
	case *GroupBySN:
		fmt.Fprintf(sb, "group%v[", n.GroupCols)
		for i, a := range n.Aggs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(sb, "%d:%d:%s", a.Func, a.Col, a.Name)
		}
		sb.WriteString("](")
		fingerprint(n.In, sb)
		sb.WriteByte(')')
	case *CrossRel:
		fmt.Fprintf(sb, "cross(%p)(", n.R)
		fingerprint(n.In, sb)
		sb.WriteByte(')')
	case *JoinRel:
		fmt.Fprintf(sb, "joinrel(%p)%v=%v(", n.R, n.InCols, n.RelCols)
		fingerprint(n.In, sb)
		sb.WriteByte(')')
	default:
		panic(fmt.Sprintf("algebra: unknown node %T", n))
	}
}

// predFingerprint renders a predicate structurally. Atom order matters (a
// disjunction is order-insensitive semantically, but treating reordered
// predicates as distinct only costs a missed sharing opportunity, never a
// wrong delta).
func predFingerprint(p pred.Predicate, sb *strings.Builder) {
	for i, a := range p.Atoms() {
		if i > 0 {
			sb.WriteByte('|')
		}
		fmt.Fprintf(sb, "%d %s ", a.Left, a.Op)
		if a.Right.IsCol {
			fmt.Fprintf(sb, "$%d", a.Right.Col)
		} else {
			sb.Write(value.AppendKey(nil, a.Right.Const))
		}
	}
}

// PlanNode is one interned subexpression of a SharedPlan: the unit of delta
// sharing. Identity: two structurally equal subexpressions anywhere in the
// plan's views are the same *PlanNode.
//
// The per-batch fields (epoch, rows, buf) are owned by the maintenance
// path, which the engine serializes under its mutation lock; everything
// else is immutable after the plan is built.
type PlanNode struct {
	// ID is the node's position in plan build order (stable across the
	// plan's lifetime; EXPLAIN surfaces it).
	ID int
	// Expr is a representative expression node (the first interned).
	Expr Node
	// Consumers is the number of views whose expression contains this node.
	Consumers int

	key      string
	children []*PlanNode

	// epoch stamps the batch rows was computed for; rows is valid only
	// while epoch equals the plan's current batch epoch. buf is the node's
	// persistent output buffer for batch-local operators (σ/Π), reused
	// across batches so steady-state delta computation allocates nothing.
	epoch uint64
	rows  []chronicle.Row
	buf   []chronicle.Row
}

// PlanNodeInfo describes one plan node for EXPLAIN.
type PlanNodeInfo struct {
	ID        int
	Consumers int
	Expr      string
}

// SharedPlan is the hash-consed delta DAG over a set of view expressions.
// Build it at DDL time (it is immutable structurally thereafter); evaluate
// it per batch under the engine's mutation lock — BeginBatch and DeltaFor
// are NOT safe for concurrent use.
type SharedPlan struct {
	nodes []*PlanNode
	byKey map[string]*PlanNode
	roots map[string]*PlanNode // view name -> root node

	epoch      uint64
	sharedHits int64
}

// NewSharedPlan returns an empty plan.
func NewSharedPlan() *SharedPlan {
	return &SharedPlan{
		byKey: make(map[string]*PlanNode),
		roots: make(map[string]*PlanNode),
	}
}

// AddView interns a view's expression into the DAG. Call once per view, in
// a deterministic order if stable node IDs matter (the engine sorts by view
// name).
func (p *SharedPlan) AddView(name string, expr Node) {
	touched := make(map[*PlanNode]bool)
	root := p.intern(expr, touched)
	for n := range touched {
		n.Consumers++
	}
	p.roots[name] = root
}

func (p *SharedPlan) intern(expr Node, touched map[*PlanNode]bool) *PlanNode {
	key := Fingerprint(expr)
	if n, ok := p.byKey[key]; ok {
		// Already interned: mark the whole reachable subgraph as touched by
		// this view (children were interned before their parent).
		p.markReachable(n, touched)
		return n
	}
	n := &PlanNode{Expr: expr, key: key}
	for _, c := range expr.children() {
		n.children = append(n.children, p.intern(c, touched))
	}
	// The ID is assigned at append time, after the children interned above
	// claimed theirs — so IDs are distinct and children number below parents.
	n.ID = len(p.nodes) + 1
	p.nodes = append(p.nodes, n)
	p.byKey[key] = n
	touched[n] = true
	return n
}

func (p *SharedPlan) markReachable(n *PlanNode, touched map[*PlanNode]bool) {
	if touched[n] {
		return
	}
	touched[n] = true
	for _, c := range n.children {
		p.markReachable(c, touched)
	}
}

// Views returns the number of view roots in the plan.
func (p *SharedPlan) Views() int { return len(p.roots) }

// Nodes returns the number of distinct interned subexpressions.
func (p *SharedPlan) Nodes() int { return len(p.nodes) }

// ViewNodes lists the plan nodes of one view's expression in post-order
// (children before parents, root last), for EXPLAIN. Nil when the view is
// not in the plan.
func (p *SharedPlan) ViewNodes(view string) []PlanNodeInfo {
	root, ok := p.roots[view]
	if !ok {
		return nil
	}
	var out []PlanNodeInfo
	seen := make(map[*PlanNode]bool)
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.children {
			walk(c)
		}
		out = append(out, PlanNodeInfo{ID: n.ID, Consumers: n.Consumers, Expr: n.Expr.String()})
	}
	walk(root)
	return out
}

// SharedNodes lists every node consumed by more than one view, by ID.
func (p *SharedPlan) SharedNodes() []PlanNodeInfo {
	var out []PlanNodeInfo
	for _, n := range p.nodes {
		if n.Consumers > 1 {
			out = append(out, PlanNodeInfo{ID: n.ID, Consumers: n.Consumers, Expr: n.Expr.String()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BeginBatch opens a new batch: previously cached node deltas become stale.
// The rows returned by DeltaFor during the previous batch — including the
// Scan leaves' aliases of the batch's stored rows — must no longer be
// referenced.
func (p *SharedPlan) BeginBatch() { p.epoch++ }

// TakeHits returns and resets the shared-hit counter: the number of times a
// node's delta was served from the batch cache instead of recomputed.
func (p *SharedPlan) TakeHits() int64 {
	h := p.sharedHits
	p.sharedHits = 0
	return h
}

// DeltaFor computes (or returns the batch-cached) expression delta for one
// view root. The rows are valid until the next BeginBatch and must be
// treated as immutable: they may be shared with other views, with the
// node's reuse buffer, or (for a bare Scan) with the chronicle's stored
// rows.
func (p *SharedPlan) DeltaFor(view string, d BatchDelta) ([]chronicle.Row, bool) {
	root, ok := p.roots[view]
	if !ok {
		return nil, false
	}
	return p.eval(root, d), true
}

// eval is Delta with per-batch memoization. σ/Π write into the node's
// persistent buffer (never into a child's cache — a child's rows may be
// shared with other parents, or alias chronicle storage); the remaining
// operators reuse the allocation behavior of Delta via the shared helpers.
func (p *SharedPlan) eval(n *PlanNode, d BatchDelta) []chronicle.Row {
	if n.epoch == p.epoch {
		p.sharedHits++
		return n.rows
	}
	n.epoch = p.epoch
	switch e := n.Expr.(type) {
	case *Scan:
		n.rows = d[e.C]
	case *Select:
		in := p.eval(n.children[0], d)
		out := n.buf[:0]
		for _, r := range in {
			if e.P.Eval(r.Vals) {
				out = append(out, r)
			}
		}
		n.buf, n.rows = out, out
	case *Project:
		in := p.eval(n.children[0], d)
		out := n.buf[:0]
		for _, r := range in {
			out = append(out, chronicle.Row{SN: r.SN, Chronon: r.Chronon, LSN: r.LSN, Vals: r.Vals.Project(e.Cols)})
		}
		n.buf, n.rows = out, out
	case *Union:
		l, r := p.eval(n.children[0], d), p.eval(n.children[1], d)
		n.rows = dedupRows(append(append([]chronicle.Row(nil), l...), r...))
	case *Diff:
		l, r := p.eval(n.children[0], d), p.eval(n.children[1], d)
		n.rows = diffRows(l, r)
	case *JoinSN:
		l, r := p.eval(n.children[0], d), p.eval(n.children[1], d)
		n.rows = joinSN(l, r)
	case *GroupBySN:
		n.rows = groupBySN(e, p.eval(n.children[0], d))
	case *CrossRel:
		n.rows = deltaCrossRel(e, p.eval(n.children[0], d))
	case *JoinRel:
		n.rows = deltaJoinRel(e, p.eval(n.children[0], d))
	default:
		panic(fmt.Sprintf("algebra: unknown node %T", n.Expr))
	}
	return n.rows
}
