package algebra

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
)

// sortedKeys canonicalizes a row multiset for comparison.
func sortedKeys(rows []chronicle.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = fmt.Sprintf("%d|%d|%s", r.SN, r.Chronon, r.Vals.FullKey())
	}
	sort.Strings(keys)
	return keys
}

func sameRows(t *testing.T, label string, got, want []chronicle.Row) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d\ngot:  %v\nwant: %v", label, len(g), len(w), dump(got), dump(want))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row multiset mismatch\ngot:  %v\nwant: %v", label, dump(got), dump(want))
		}
	}
}

func dump(rows []chronicle.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("sn=%d %s", r.SN, r.Vals)
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

func TestDeltaSelect(t *testing.T) {
	f := newFixture(t)
	sel, _ := NewSelect(NewScan(f.calls), pred.Or(pred.ColConst(1, pred.Gt, value.Int(10))))
	d := f.appendCall(t, "a", 5)
	if got := Delta(sel, d); len(got) != 0 {
		t.Errorf("non-matching tuple produced delta %v", got)
	}
	d = f.appendCall(t, "a", 20)
	got := Delta(sel, d)
	if len(got) != 1 || got[0].Vals[1].AsInt() != 20 {
		t.Errorf("delta = %v", dump(got))
	}
}

func TestDeltaProject(t *testing.T) {
	f := newFixture(t)
	p, _ := NewProject(NewScan(f.calls), []int{1})
	d := f.appendCall(t, "a", 42)
	got := Delta(p, d)
	if len(got) != 1 || len(got[0].Vals) != 1 || got[0].Vals[0].AsInt() != 42 {
		t.Errorf("delta = %v", dump(got))
	}
	if got[0].SN != d[f.calls][0].SN {
		t.Error("projection must preserve the sequencing attribute")
	}
}

func TestDeltaUnionDedups(t *testing.T) {
	f := newFixture(t)
	// Two selections of the same chronicle whose ranges overlap: a tuple in
	// the overlap must appear once in the union's delta — the paper's very
	// example of two operands deriving a tuple with the same SN.
	scan := NewScan(f.calls)
	lo, _ := NewSelect(scan, pred.Or(pred.ColConst(1, pred.Gt, value.Int(10))))
	hi, _ := NewSelect(scan, pred.Or(pred.ColConst(1, pred.Lt, value.Int(100))))
	u, _ := NewUnion(lo, hi)
	got := Delta(u, f.appendCall(t, "a", 50)) // in both ranges
	if len(got) != 1 {
		t.Errorf("union delta = %v, want 1 row", dump(got))
	}
	got = Delta(u, f.appendCall(t, "a", 5)) // only in hi
	if len(got) != 1 {
		t.Errorf("union delta = %v, want 1 row", dump(got))
	}
}

func TestDeltaDiff(t *testing.T) {
	f := newFixture(t)
	scan := NewScan(f.calls)
	all, _ := NewSelect(scan, pred.True())
	big, _ := NewSelect(scan, pred.Or(pred.ColConst(1, pred.Gt, value.Int(10))))
	d, _ := NewDiff(all, big) // calls with minutes <= 10
	got := Delta(d, f.appendCall(t, "a", 5))
	if len(got) != 1 {
		t.Errorf("diff delta = %v", dump(got))
	}
	got = Delta(d, f.appendCall(t, "a", 50))
	if len(got) != 0 {
		t.Errorf("diff delta = %v, want empty", dump(got))
	}
}

func TestDeltaJoinSN(t *testing.T) {
	f := newFixture(t)
	j, _ := NewJoinSN(NewScan(f.calls), NewScan(f.payments))
	// Append to calls only: no matching payment SN, join delta empty.
	if got := Delta(j, f.appendCall(t, "a", 5)); len(got) != 0 {
		t.Errorf("solo append join delta = %v", dump(got))
	}
	// Simultaneous append to both: one joined row.
	got := Delta(j, f.appendBoth(t, "a", 7, 100))
	if len(got) != 1 {
		t.Fatalf("join delta = %v", dump(got))
	}
	r := got[0]
	if r.Vals[1].AsInt() != 7 || r.Vals[3].AsInt() != 100 {
		t.Errorf("joined row = %v", r.Vals)
	}
}

func TestDeltaGroupBySN(t *testing.T) {
	f := newFixture(t)
	g, _ := NewGroupBySN(NewScan(f.calls), []int{0}, []aggregate.Spec{
		{Func: aggregate.Sum, Col: 1, Name: "total"},
		{Func: aggregate.Count, Col: -1, Name: "n"},
	})
	// One batch with three tuples sharing the SN: two accounts.
	rows, err := f.calls.Append(f.group.NextSN(), 0, f.nextLSN(), []value.Tuple{
		{value.Str("a"), value.Int(10)},
		{value.Str("b"), value.Int(5)},
		{value.Str("a"), value.Int(20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := Delta(g, BatchDelta{f.calls: rows})
	if len(got) != 2 {
		t.Fatalf("groupby delta = %v", dump(got))
	}
	byAcct := map[string][2]int64{}
	for _, r := range got {
		byAcct[r.Vals[0].AsString()] = [2]int64{r.Vals[1].AsInt(), r.Vals[2].AsInt()}
	}
	if byAcct["a"] != [2]int64{30, 2} || byAcct["b"] != [2]int64{5, 1} {
		t.Errorf("groups = %v", byAcct)
	}
}

func TestDeltaCrossRel(t *testing.T) {
	f := newFixture(t)
	f.upsertCust(t, "a", "nj", 500)
	f.upsertCust(t, "b", "ny", 0)
	c, _ := NewCrossRel(NewScan(f.calls), f.cust)
	got := Delta(c, f.appendCall(t, "a", 5))
	if len(got) != 2 {
		t.Fatalf("cross delta = %v, want 2 (|R| rows)", dump(got))
	}
}

func TestDeltaJoinRelKey(t *testing.T) {
	f := newFixture(t)
	f.upsertCust(t, "a", "nj", 500)
	f.upsertCust(t, "b", "ny", 0)
	j, _ := NewJoinRel(NewScan(f.calls), f.cust, []int{0}, []int{0})
	got := Delta(j, f.appendCall(t, "a", 5))
	if len(got) != 1 {
		t.Fatalf("key join delta = %v", dump(got))
	}
	if got[0].Vals[3].AsString() != "nj" || got[0].Vals[4].AsInt() != 500 {
		t.Errorf("joined row = %v", got[0].Vals)
	}
	// Unmatched chronicle tuple joins with nothing.
	if got := Delta(j, f.appendCall(t, "zz", 5)); len(got) != 0 {
		t.Errorf("unmatched join delta = %v", dump(got))
	}
}

func TestDeltaJoinRelNonKey(t *testing.T) {
	f := newFixture(t)
	f.upsertCust(t, "a", "nj", 500)
	f.upsertCust(t, "b", "nj", 100)
	f.upsertCust(t, "c", "ny", 0)
	// Join calls.acct against cust.state: nonsense semantically, but it
	// exercises the non-key path. Use a chronicle whose acct holds a state.
	j, _ := NewJoinRel(NewScan(f.calls), f.cust, []int{0}, []int{1})
	got := Delta(j, f.appendCall(t, "nj", 5))
	if len(got) != 2 {
		t.Fatalf("non-key join delta = %v, want 2", dump(got))
	}
}

// TestDeltaTemporalJoin is Example 2.2: a proactive relation update must
// affect only subsequent chronicle tuples, and the delta must join each
// tuple with the relation version at the tuple's instant.
func TestDeltaTemporalJoin(t *testing.T) {
	f := newFixture(t)
	f.upsertCust(t, "a", "nj", 500)
	j, _ := NewJoinRel(NewScan(f.calls), f.cust, []int{0}, []int{0})

	d1 := f.appendCall(t, "a", 5)
	got := Delta(j, d1)
	if got[0].Vals[3].AsString() != "nj" {
		t.Errorf("pre-move state = %v", got[0].Vals[3])
	}

	// Customer moves: proactive update (ordered before the next append).
	f.upsertCust(t, "a", "ny", 0)
	d2 := f.appendCall(t, "a", 7)
	got = Delta(j, d2)
	if got[0].Vals[3].AsString() != "ny" {
		t.Errorf("post-move state = %v", got[0].Vals[3])
	}

	// Re-running the first delta (as the reference evaluator does) must
	// still see the old version: the temporal join is on the tuple's LSN.
	got = Delta(j, d1)
	if got[0].Vals[3].AsString() != "nj" {
		t.Errorf("temporal join broke: first tuple now sees %v", got[0].Vals[3])
	}
}

// TestMonotonicity is Theorem 4.1: every delta row carries one of the new
// sequence numbers, for every operator shape.
func TestMonotonicity(t *testing.T) {
	f := newFixture(t)
	f.upsertCust(t, "a", "nj", 500)
	f.upsertCust(t, "b", "ny", 0)
	exprs := buildExprZoo(t, f)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		acct := string(rune('a' + rng.Intn(3)))
		var d BatchDelta
		if rng.Intn(3) == 0 {
			d = f.appendBoth(t, acct, int64(rng.Intn(100)), int64(rng.Intn(50)))
		} else {
			d = f.appendCall(t, acct, int64(rng.Intn(100)))
		}
		newSN := f.group.LastSN()
		for name, e := range exprs {
			for _, r := range Delta(e, d) {
				if r.SN != newSN {
					t.Fatalf("%s: delta row has stale SN %d, batch SN %d", name, r.SN, newSN)
				}
			}
		}
	}
}

// buildExprZoo returns a varied set of valid CA expressions over the fixture.
func buildExprZoo(t testing.TB, f *fixture) map[string]Node {
	t.Helper()
	calls, payments := NewScan(f.calls), NewScan(f.payments)
	sel, err := NewSelect(calls, pred.Or(pred.ColConst(1, pred.Gt, value.Int(30))))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(calls, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	projPay, err := NewProject(payments, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUnion(proj, projPay)
	if err != nil {
		t.Fatal(err)
	}
	dif, err := NewDiff(proj, projPay)
	if err != nil {
		t.Fatal(err)
	}
	jsn, err := NewJoinSN(calls, payments)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := NewGroupBySN(calls, []int{0}, []aggregate.Spec{
		{Func: aggregate.Sum, Col: 1, Name: "total"},
		{Func: aggregate.Max, Col: 1, Name: "longest"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := NewCrossRel(sel, f.cust)
	if err != nil {
		t.Fatal(err)
	}
	keyJoin, err := NewJoinRel(calls, f.cust, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// A deeper compound: σ over a key join, grouped.
	bonusSel, err := NewSelect(keyJoin, pred.Or(pred.ColConst(3, pred.Eq, value.Str("nj"))))
	if err != nil {
		t.Fatal(err)
	}
	deep, err := NewGroupBySN(bonusSel, []int{0}, []aggregate.Spec{
		{Func: aggregate.Sum, Col: 4, Name: "bonus_total"},
	})
	if err != nil {
		t.Fatal(err)
	}
	joinOfUnions, err := NewJoinSN(uni, dif)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Node{
		"select":        sel,
		"project":       proj,
		"union":         uni,
		"diff":          dif,
		"joinSN":        jsn,
		"groupBySN":     grp,
		"cross":         cross,
		"keyJoin":       keyJoin,
		"deep":          deep,
		"join-of-union": joinOfUnions,
	}
}

// TestIncrementalMatchesReference is the golden invariant: accumulating
// Delta over a random append/update stream equals the reference evaluation
// of the expression over the fully retained chronicles — without the
// incremental path ever reading the chronicles.
func TestIncrementalMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		f := newFixture(t)
		f.upsertCust(t, "a", "nj", 500)
		f.upsertCust(t, "b", "ny", 0)
		exprs := buildExprZoo(t, f)
		accumulated := map[string][]chronicle.Row{}

		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 120; step++ {
			switch rng.Intn(6) {
			case 0: // proactive relation update
				acct := string(rune('a' + rng.Intn(3)))
				states := []string{"nj", "ny", "ca"}
				f.upsertCust(t, acct, states[rng.Intn(3)], int64(rng.Intn(1000)))
				continue
			case 1: // simultaneous append to both chronicles
				acct := string(rune('a' + rng.Intn(3)))
				d := f.appendBoth(t, acct, int64(rng.Intn(100)), int64(rng.Intn(50)))
				for name, e := range exprs {
					accumulated[name] = append(accumulated[name], Delta(e, d)...)
				}
			default: // plain call append, sometimes multi-tuple
				n := 1 + rng.Intn(3)
				tuples := make([]value.Tuple, n)
				for i := range tuples {
					tuples[i] = value.Tuple{
						value.Str(string(rune('a' + rng.Intn(3)))),
						value.Int(int64(rng.Intn(100))),
					}
				}
				rows, err := f.calls.Append(f.group.NextSN(), 0, f.nextLSN(), tuples)
				if err != nil {
					t.Fatal(err)
				}
				d := BatchDelta{f.calls: rows}
				for name, e := range exprs {
					accumulated[name] = append(accumulated[name], Delta(e, d)...)
				}
			}
		}

		for name, e := range exprs {
			want, err := Evaluate(e)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sameRows(t, fmt.Sprintf("seed %d, expr %s", seed, name), accumulated[name], want)
		}
	}
}

// TestEvaluateRequiresFullRetention: the reference evaluator must refuse to
// run over a windowed chronicle.
func TestEvaluateRequiresFullRetention(t *testing.T) {
	g := chronicle.NewGroup("g")
	c, _ := g.NewChronicle("c", value.NewSchema(value.Column{Name: "x", Kind: value.KindInt}), chronicle.Retention(1))
	for i := 0; i < 5; i++ {
		c.Append(int64(i), 0, uint64(i), []value.Tuple{{value.Int(int64(i))}})
	}
	if _, err := Evaluate(NewScan(c)); err == nil {
		t.Error("Evaluate over a lossy chronicle must fail")
	}
}

func TestDeltaUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown node should panic")
		}
	}()
	Delta(badNode{}, nil)
}

type badNode struct{}

func (badNode) Schema() *value.Schema   { return nil }
func (badNode) Group() *chronicle.Group { return nil }
func (badNode) String() string          { return "bad" }
func (badNode) children() []Node        { return nil }
