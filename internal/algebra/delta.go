package algebra

import (
	"fmt"
	"sort"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
)

// BatchDelta is the set of rows inserted into base chronicles by one
// simultaneous append (one sequence number). Chronicles not present have an
// empty delta.
type BatchDelta map[*chronicle.Chronicle][]chronicle.Row

// Delta computes the rows this append adds to the expression's output — the
// Δ-rules from the proof of Theorem 4.1. The computation is batch-local: it
// never reads stored chronicles, never materializes intermediate views, and
// touches relations only through current-version (or AsOf) lookups. That
// locality is exactly why the paper's maintenance complexity is independent
// of both |C| and the view size.
//
// The rules, per operator (Δ over old state E; fresh SNs make cross terms
// with old state provably empty):
//
//	σ:      Δ = σ(ΔE)
//	Π:      Δ = Π(ΔE)
//	∪:      Δ = ΔE₁ ∪ ΔE₂        (dedup within the batch)
//	−:      Δ = ΔE₁ − ΔE₂        (within the batch)
//	⋈SN:    Δ = ΔE₁ ⋈ ΔE₂        (old⋈new terms empty: SNs are fresh)
//	γ(SN):  group the batch only  (new SNs form brand-new groups)
//	×R:     Δ = ΔE × R(version at the tuple's instant)
//	⋈key R: per-Δ-tuple key lookup
func Delta(n Node, d BatchDelta) []chronicle.Row {
	switch n := n.(type) {
	case *Scan:
		return d[n.C]
	case *Select:
		in := Delta(n.In, d)
		var out []chronicle.Row
		for _, r := range in {
			if n.P.Eval(r.Vals) {
				out = append(out, r)
			}
		}
		return out
	case *Project:
		in := Delta(n.In, d)
		out := make([]chronicle.Row, len(in))
		for i, r := range in {
			out[i] = chronicle.Row{SN: r.SN, Chronon: r.Chronon, LSN: r.LSN, Vals: r.Vals.Project(n.Cols)}
		}
		return out
	case *Union:
		return dedupRows(append(append([]chronicle.Row(nil), Delta(n.L, d)...), Delta(n.R, d)...))
	case *Diff:
		return diffRows(Delta(n.L, d), Delta(n.R, d))
	case *JoinSN:
		return joinSN(Delta(n.L, d), Delta(n.R, d))
	case *GroupBySN:
		return groupBySN(n, Delta(n.In, d))
	case *CrossRel:
		return deltaCrossRel(n, Delta(n.In, d))
	case *JoinRel:
		return deltaJoinRel(n, Delta(n.In, d))
	default:
		panic(fmt.Sprintf("algebra: unknown node %T", n))
	}
}

// DeltaInto is Delta writing its output, when the operator permits, into
// scratch's backing array, so a view can reuse one delta buffer across
// batches. It returns the delta rows plus the buffer the caller should
// retain for the next batch; the two are distinct because a Scan delta *is*
// the batch's stored rows — those must never become the reuse buffer, or
// the next batch would overwrite rows the chronicle retains. The invariant:
// rows either starts at keep's backing array index 0 (so an enclosing
// operator may transform it in place, write index ≤ read index) or is
// entirely foreign and keep is untouched scratch. Operators with
// batch-local σ/Π output fill the buffer; everything else falls back to
// Delta and allocates as before.
func DeltaInto(n Node, d BatchDelta, scratch []chronicle.Row) (rows, keep []chronicle.Row) {
	switch n := n.(type) {
	case *Scan:
		return d[n.C], scratch
	case *Select:
		in, buf := DeltaInto(n.In, d, scratch)
		out := buf[:0]
		for _, r := range in {
			if n.P.Eval(r.Vals) {
				out = append(out, r)
			}
		}
		return out, out
	case *Project:
		in, buf := DeltaInto(n.In, d, scratch)
		out := buf[:0]
		for _, r := range in {
			out = append(out, chronicle.Row{SN: r.SN, Chronon: r.Chronon, LSN: r.LSN, Vals: r.Vals.Project(n.Cols)})
		}
		return out, out
	default:
		return Delta(n, d), scratch
	}
}

// deltaCrossRel pairs each input delta row with the relation version at the
// row's instant (Δ(E × R) = ΔE × R@t).
func deltaCrossRel(n *CrossRel, in []chronicle.Row) []chronicle.Row {
	var out []chronicle.Row
	for _, r := range in {
		n.R.ScanAsOf(r.LSN, func(rt value.Tuple) bool {
			out = append(out, concatRow(r, rt))
			return true
		})
	}
	return out
}

// deltaJoinRel joins each input delta row against the relation version at
// the row's instant (per-Δ-tuple key lookup when the join is on the key).
func deltaJoinRel(n *JoinRel, in []chronicle.Row) []chronicle.Row {
	var out []chronicle.Row
	for _, r := range in {
		for _, rt := range relMatches(n, r) {
			out = append(out, concatRow(r, rt))
		}
	}
	return out
}

// relMatches returns the relation tuples joining with row r, honoring the
// temporal-join semantics via the row's LSN. A key join is a single
// O(log|R|) lookup; a non-key join scans (the CA-but-not-CA⋈ cost).
func relMatches(n *JoinRel, r chronicle.Row) []value.Tuple {
	if n.onKey {
		keyCols := n.R.KeyCols()
		ordered := make(value.Tuple, len(keyCols))
		for i, kc := range keyCols {
			for j, rc := range n.RelCols {
				if rc == kc {
					ordered[i] = r.Vals[n.InCols[j]]
				}
			}
		}
		if t, ok := n.R.GetAsOf(r.LSN, ordered); ok {
			return []value.Tuple{t}
		}
		return nil
	}
	var out []value.Tuple
	n.R.ScanAsOf(r.LSN, func(rt value.Tuple) bool {
		for i, rc := range n.RelCols {
			if !value.Equal(r.Vals[n.InCols[i]], rt[rc]) {
				return true
			}
		}
		out = append(out, rt)
		return true
	})
	return out
}

func concatRow(r chronicle.Row, rel value.Tuple) chronicle.Row {
	vals := make(value.Tuple, 0, len(r.Vals)+len(rel))
	vals = append(vals, r.Vals...)
	vals = append(vals, rel...)
	return chronicle.Row{SN: r.SN, Chronon: r.Chronon, LSN: r.LSN, Vals: vals}
}

// rowKey identifies a row up to set semantics: sequence number plus tuple.
func rowKey(r chronicle.Row) string {
	return fmt.Sprintf("%d|%s", r.SN, r.Vals.FullKey())
}

// dedupRows removes duplicate (SN, tuple) pairs, keeping first occurrences
// in order.
func dedupRows(rows []chronicle.Row) []chronicle.Row {
	if len(rows) <= 1 {
		return rows
	}
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := rowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// diffRows returns l − r under set semantics.
func diffRows(l, r []chronicle.Row) []chronicle.Row {
	if len(l) == 0 {
		return nil
	}
	drop := make(map[string]bool, len(r))
	for _, row := range r {
		drop[rowKey(row)] = true
	}
	var out []chronicle.Row
	seen := make(map[string]bool, len(l))
	for _, row := range l {
		k := rowKey(row)
		if drop[k] || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

// joinSN hash-joins two row sets on the sequencing attribute.
func joinSN(l, r []chronicle.Row) []chronicle.Row {
	if len(l) == 0 || len(r) == 0 {
		return nil
	}
	bySN := make(map[int64][]chronicle.Row, len(r))
	for _, row := range r {
		bySN[row.SN] = append(bySN[row.SN], row)
	}
	var out []chronicle.Row
	for _, lr := range l {
		for _, rr := range bySN[lr.SN] {
			out = append(out, concatRow(lr, rr.Vals))
		}
	}
	return dedupRows(out)
}

// groupBySN groups rows by (SN, GroupCols) and aggregates. Because grouping
// includes the sequencing attribute and batch SNs are fresh, the groups are
// complete within the batch ("the new inserted tuples form one or more
// brand new groups" — proof of Theorem 4.2).
func groupBySN(n *GroupBySN, in []chronicle.Row) []chronicle.Row {
	if len(in) == 0 {
		return nil
	}
	type grp struct {
		first  chronicle.Row
		states []aggregate.State
		order  int
	}
	groups := make(map[string]*grp)
	for _, r := range in {
		k := fmt.Sprintf("%d|%s", r.SN, r.Vals.Key(n.GroupCols))
		g, ok := groups[k]
		if !ok {
			g = &grp{first: r, states: aggregate.NewStates(n.Aggs), order: len(groups)}
			groups[k] = g
		}
		aggregate.Apply(g.states, n.Aggs, r.Vals)
	}
	out := make([]chronicle.Row, 0, len(groups))
	for _, g := range groups {
		vals := make(value.Tuple, 0, len(n.GroupCols)+len(n.Aggs))
		vals = append(vals, g.first.Vals.Project(n.GroupCols)...)
		vals = append(vals, aggregate.Results(g.states)...)
		out = append(out, chronicle.Row{SN: g.first.SN, Chronon: g.first.Chronon, LSN: g.first.LSN, Vals: vals})
	}
	// Deterministic output order: by SN, then group-key encounter order.
	orderOf := func(r chronicle.Row) int {
		return groups[fmt.Sprintf("%d|%s", r.SN, keyOfOutput(n, r))].order
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SN != out[j].SN {
			return out[i].SN < out[j].SN
		}
		return orderOf(out[i]) < orderOf(out[j])
	})
	return out
}

// keyOfOutput reconstructs the group key of an output row, whose leading
// columns are exactly the grouping columns.
func keyOfOutput(n *GroupBySN, r chronicle.Row) string {
	idx := make([]int, len(n.GroupCols))
	for i := range idx {
		idx[i] = i
	}
	return r.Vals.Key(idx)
}
