package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
)

// bigCalls builds σ[minutes > 10](calls) — two independently constructed
// instances must fingerprint identically.
func bigCalls(t testing.TB, f *fixture) Node {
	t.Helper()
	s, err := NewSelect(NewScan(f.calls), pred.Or(pred.ColConst(1, pred.Gt, value.Int(10))))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFingerprintStructuralEquality(t *testing.T) {
	f := newFixture(t)
	if Fingerprint(bigCalls(t, f)) != Fingerprint(bigCalls(t, f)) {
		t.Error("structurally equal selects fingerprint differently")
	}
	if Fingerprint(NewScan(f.calls)) == Fingerprint(NewScan(f.payments)) {
		t.Error("distinct chronicles share a fingerprint")
	}
	// Same display text, different type: '10' (string) vs 10 (int).
	sInt, _ := NewSelect(NewScan(f.calls), pred.Or(pred.ColConst(0, pred.Eq, value.Int(10))))
	sStr, _ := NewSelect(NewScan(f.calls), pred.Or(pred.ColConst(0, pred.Eq, value.Str("10"))))
	if Fingerprint(sInt) == Fingerprint(sStr) {
		t.Error("int and string constants collide")
	}
	// Parameter changes must change the key.
	p1, _ := NewProject(bigCalls(t, f), []int{0})
	p2, _ := NewProject(bigCalls(t, f), []int{1})
	if Fingerprint(p1) == Fingerprint(p2) {
		t.Error("distinct projections collide")
	}
	g1, _ := NewGroupBySN(NewScan(f.calls), []int{0}, []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "s"}})
	g2, _ := NewGroupBySN(NewScan(f.calls), []int{0}, []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "s"}})
	if Fingerprint(g1) == Fingerprint(g2) {
		t.Error("distinct aggregates collide")
	}
	j1, _ := NewJoinRel(NewScan(f.calls), f.cust, []int{0}, []int{0})
	j2, _ := NewJoinRel(NewScan(f.payments), f.cust, []int{0}, []int{0})
	if Fingerprint(j1) == Fingerprint(j2) {
		t.Error("joins over distinct inputs collide")
	}
	if Fingerprint(j1) != Fingerprint(j1) {
		t.Error("join not self-equal")
	}
}

func TestSharedPlanInterning(t *testing.T) {
	f := newFixture(t)
	p := NewSharedPlan()
	// Twin views over the same σ prefix, plus one unrelated view.
	sum1, _ := NewGroupBySN(bigCalls(t, f), []int{0}, []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}})
	cnt1, _ := NewGroupBySN(bigCalls(t, f), []int{0}, []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}})
	pay, _ := NewProject(NewScan(f.payments), []int{1})
	p.AddView("big_sum", sum1)
	p.AddView("big_cnt", cnt1)
	p.AddView("pay_amt", pay)
	// Nodes: scan(calls), σ, γsum, γcnt, scan(payments), Π = 6.
	if p.Nodes() != 6 {
		t.Fatalf("Nodes = %d, want 6", p.Nodes())
	}
	if p.Views() != 3 {
		t.Fatalf("Views = %d, want 3", p.Views())
	}
	shared := p.SharedNodes()
	if len(shared) != 2 { // scan(calls) and the σ node
		t.Fatalf("SharedNodes = %+v, want 2 entries", shared)
	}
	for _, s := range shared {
		if s.Consumers != 2 {
			t.Errorf("node %d consumers = %d, want 2", s.ID, s.Consumers)
		}
	}
	// Per-view node listing: post-order, root last, child IDs shared.
	a, b := p.ViewNodes("big_sum"), p.ViewNodes("big_cnt")
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("ViewNodes lengths = %d, %d, want 3, 3", len(a), len(b))
	}
	if a[0].ID != b[0].ID || a[1].ID != b[1].ID {
		t.Error("shared prefix has different node ids across views")
	}
	if a[2].ID == b[2].ID {
		t.Error("distinct roots share a node id")
	}
	if p.ViewNodes("nope") != nil {
		t.Error("unknown view returned nodes")
	}
	// IDs are distinct across the whole plan and children number below
	// parents (IDs are assigned at append time, after children interned).
	seen := map[int]bool{}
	for _, view := range []string{"big_sum", "big_cnt", "pay_amt"} {
		nodes := p.ViewNodes(view)
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1].ID >= nodes[i].ID {
				t.Errorf("%s: post-order IDs not ascending: %d then %d", view, nodes[i-1].ID, nodes[i].ID)
			}
		}
		root := nodes[len(nodes)-1]
		if seen[root.ID] {
			t.Errorf("%s: root ID %d reused", view, root.ID)
		}
		seen[root.ID] = true
	}
}

// TestSharedPlanDeltaMatchesDelta drives a random workload through a plan
// holding several views — some structurally identical, some sharing only a
// prefix — and checks every per-batch DeltaFor against the unshared Delta
// oracle, plus the shared-hit accounting for the identical roots.
func TestSharedPlanDeltaMatchesDelta(t *testing.T) {
	f := newFixture(t)
	f.upsertCust(t, "a", "nj", 500)
	f.upsertCust(t, "b", "ny", 0)

	sum1, _ := NewGroupBySN(bigCalls(t, f), []int{0}, []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}})
	sum2, _ := NewGroupBySN(bigCalls(t, f), []int{0}, []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}})
	cnt, _ := NewGroupBySN(bigCalls(t, f), []int{0}, []aggregate.Spec{{Func: aggregate.Count, Col: -1, Name: "n"}})
	join, _ := NewJoinRel(bigCalls(t, f), f.cust, []int{0}, []int{0})
	bare := NewScan(f.calls)

	views := map[string]Node{
		"sum1": sum1, "sum2": sum2, "cnt": cnt, "join": join, "bare": bare,
	}
	p := NewSharedPlan()
	for name, e := range views {
		p.AddView(name, e)
	}

	rng := rand.New(rand.NewSource(9))
	var hits int64
	for step := 0; step < 50; step++ {
		if rng.Intn(6) == 0 {
			f.upsertCust(t, string(rune('a'+rng.Intn(2))), "ca", int64(rng.Intn(100)))
			continue
		}
		d := f.appendCall(t, string(rune('a'+rng.Intn(2))), int64(rng.Intn(40)))
		p.BeginBatch()
		for name, e := range views {
			got, ok := p.DeltaFor(name, d)
			if !ok {
				t.Fatalf("step %d: view %s missing from plan", step, name)
			}
			sameRows(t, fmt.Sprintf("step %d view %s", step, name), got, Delta(e, d))
		}
		hits += p.TakeHits()
	}
	// sum1/sum2 are identical: every batch after the first evaluation of one
	// serves the other's whole tree from cache; cnt and join additionally hit
	// the shared σ prefix, bare hits the shared scan leaf. So hits must be
	// at least 3 per batch × 40-ish batches — assert the floor loosely.
	if hits < 100 {
		t.Errorf("sharedHits = %d, want ≥ 100", hits)
	}
}

// TestSharedPlanBufferIsolation checks the memory contract: a σ node's
// cached output never aliases its child's cache, so sibling consumers of
// the child see unmodified rows, and batch N's evaluation does not disturb
// copies taken during batch N-1.
func TestSharedPlanBufferIsolation(t *testing.T) {
	f := newFixture(t)
	sel := bigCalls(t, f)
	bare := NewScan(f.calls)
	p := NewSharedPlan()
	p.AddView("sel", sel)
	p.AddView("bare", bare)

	d := f.appendCall(t, "a", 50)
	p.BeginBatch()
	selRows, _ := p.DeltaFor("sel", d)
	bareRows, _ := p.DeltaFor("bare", d)
	if len(selRows) != 1 || len(bareRows) != 1 {
		t.Fatalf("rows = %d, %d, want 1, 1", len(selRows), len(bareRows))
	}
	if &bareRows[0] == &selRows[0] {
		t.Fatal("σ output aliases the scan cache")
	}
	if bareRows[0].Vals[1].AsInt() != 50 {
		t.Errorf("scan row corrupted: %v", bareRows[0].Vals)
	}
	// The scan delta IS the batch's stored rows; the σ buffer must be a
	// different backing array so buffer reuse can never overwrite storage.
	d2 := f.appendCall(t, "a", 60)
	p.BeginBatch()
	if _, ok := p.DeltaFor("sel", d2); !ok {
		t.Fatal("second batch eval failed")
	}
	if d[f.calls][0].Vals[1].AsInt() != 50 {
		t.Errorf("batch-1 stored row overwritten by batch-2 σ reuse: %v", d[f.calls][0].Vals)
	}
}

// TestSharedPlanRandomExprs cross-checks plan evaluation against Delta over
// randomly generated expressions, interning each expression twice under two
// view names so the dedup path is exercised for every operator shape.
func TestSharedPlanRandomExprs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			f := newFixture(t)
			f.upsertCust(t, "a", "nj", 500)
			f.upsertCust(t, "b", "ny", 0)

			exprs := make([]Node, 4)
			p := NewSharedPlan()
			for i := range exprs {
				exprs[i] = randomExpr(rng, f, 3)
				p.AddView(fmt.Sprintf("v%d", i), exprs[i])
				p.AddView(fmt.Sprintf("v%d_twin", i), exprs[i])
			}
			for step := 0; step < 30; step++ {
				var d BatchDelta
				if rng.Intn(2) == 0 {
					d = f.appendBoth(t, string(rune('a'+rng.Intn(3))), int64(rng.Intn(80)), int64(rng.Intn(40)))
				} else {
					d = f.appendCall(t, string(rune('a'+rng.Intn(3))), int64(rng.Intn(80)))
				}
				p.BeginBatch()
				for i, e := range exprs {
					want := Delta(e, d)
					for _, name := range []string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d_twin", i)} {
						got, ok := p.DeltaFor(name, d)
						if !ok {
							t.Fatalf("view %s missing", name)
						}
						sameRows(t, fmt.Sprintf("step %d %s (%s)", step, name, e), got, want)
					}
				}
			}
		})
	}
}

func TestSharedPlanZeroAllocSteadyState(t *testing.T) {
	f := newFixture(t)
	// σ chains reuse node buffers, so steady-state evaluation is
	// allocation-free (Π copies a tuple per row by contract, same as the
	// unshared path, so it is excluded here).
	sel, err := NewSelect(bigCalls(t, f), pred.Or(pred.ColConst(1, pred.Lt, value.Int(100))))
	if err != nil {
		t.Fatal(err)
	}
	p := NewSharedPlan()
	p.AddView("v", sel)
	d := f.appendCall(t, "a", 50)
	// Warm the buffers.
	p.BeginBatch()
	p.DeltaFor("v", d)
	allocs := testing.AllocsPerRun(200, func() {
		p.BeginBatch()
		if _, ok := p.DeltaFor("v", d); !ok {
			t.Fatal("eval failed")
		}
	})
	if allocs > 0.5 {
		t.Errorf("σ/Π shared eval allocates %.1f/op, want 0", allocs)
	}
}
