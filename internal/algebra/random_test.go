package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/value"
)

// randomExpr builds a random well-formed CA expression over the fixture,
// biased toward small trees. It exercises every operator, including nested
// joins, unions of projections, and differences.
func randomExpr(rng *rand.Rand, f *fixture, depth int) Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		// Leaves: one of the two chronicles.
		if rng.Intn(2) == 0 {
			return NewScan(f.calls)
		}
		return NewScan(f.payments)
	}
	child := func() Node { return randomExpr(rng, f, depth-1) }
	switch rng.Intn(8) {
	case 0: // selection with a random disjunction over column 0/1
		in := child()
		var atoms []pred.Atom
		for i := 0; i <= rng.Intn(2); i++ {
			col := rng.Intn(in.Schema().Len())
			if in.Schema().Col(col).Kind == value.KindString {
				atoms = append(atoms, pred.ColConst(col, pred.Eq, value.Str(string(rune('a'+rng.Intn(3))))))
			} else {
				ops := []pred.Op{pred.Lt, pred.Ge, pred.Ne}
				atoms = append(atoms, pred.ColConst(col, ops[rng.Intn(len(ops))], value.Int(int64(rng.Intn(80)))))
			}
		}
		s, err := NewSelect(in, pred.Or(atoms...))
		if err != nil {
			panic(err)
		}
		return s
	case 1: // projection keeping a random non-empty prefix permutation
		in := child()
		n := in.Schema().Len()
		keep := 1 + rng.Intn(n)
		cols := rng.Perm(n)[:keep]
		p, err := NewProject(in, cols)
		if err != nil {
			panic(err)
		}
		return p
	case 2: // union of two projections onto a shared single column type
		l, r := child(), child()
		lc, rc := sameTypedColumn(l, r)
		if lc < 0 {
			return l
		}
		lp, err := NewProject(l, []int{lc})
		if err != nil {
			panic(err)
		}
		rp, err := NewProject(r, []int{rc})
		if err != nil {
			panic(err)
		}
		// Align the column names so the union type-checks.
		if !lp.Schema().Equal(rp.Schema()) {
			return lp
		}
		u, err := NewUnion(lp, rp)
		if err != nil {
			panic(err)
		}
		return u
	case 3: // difference, same construction as union
		l, r := child(), child()
		lc, rc := sameTypedColumn(l, r)
		if lc < 0 {
			return l
		}
		lp, err := NewProject(l, []int{lc})
		if err != nil {
			panic(err)
		}
		rp, err := NewProject(r, []int{rc})
		if err != nil {
			panic(err)
		}
		if !lp.Schema().Equal(rp.Schema()) {
			return lp
		}
		d, err := NewDiff(lp, rp)
		if err != nil {
			panic(err)
		}
		return d
	case 4: // SN-join
		j, err := NewJoinSN(child(), child())
		if err != nil {
			panic(err)
		}
		return j
	case 5: // group-by with SN
		in := child()
		groupCols := []int{}
		if rng.Intn(2) == 0 && in.Schema().Len() > 0 {
			groupCols = append(groupCols, rng.Intn(in.Schema().Len()))
		}
		aggCol := rng.Intn(in.Schema().Len())
		fn := []aggregate.Func{aggregate.Count, aggregate.Sum, aggregate.Min, aggregate.Max}[rng.Intn(4)]
		if fn == aggregate.Sum && in.Schema().Col(aggCol).Kind == value.KindString {
			fn = aggregate.Count
		}
		g, err := NewGroupBySN(in, groupCols, []aggregate.Spec{
			{Func: fn, Col: aggCol, Name: fmt.Sprintf("agg_d%d_%d", depth, rng.Intn(1000))},
		})
		if err != nil {
			// Rare name collision with a grouped "agg_*" column: fall back.
			return in
		}
		return g
	case 6: // key join with the relation, when a string column exists
		in := child()
		if col := stringColumn(in); col >= 0 {
			j, err := NewJoinRel(in, f.cust, []int{col}, []int{0})
			if err != nil {
				panic(err)
			}
			return j
		}
		return in
	default: // cross product with the (small) relation
		c, err := NewCrossRel(child(), f.cust)
		if err != nil {
			panic(err)
		}
		return c
	}
}

// sameTypedColumn finds column indexes (one per operand) of equal kind, to
// make union/difference operands type-compatible after projection.
func sameTypedColumn(l, r Node) (int, int) {
	for i := 0; i < l.Schema().Len(); i++ {
		for j := 0; j < r.Schema().Len(); j++ {
			if l.Schema().Col(i) == r.Schema().Col(j) {
				return i, j
			}
		}
	}
	return -1, -1
}

func stringColumn(n Node) int {
	for i := 0; i < n.Schema().Len(); i++ {
		if n.Schema().Col(i).Kind == value.KindString {
			return i
		}
	}
	return -1
}

// TestRandomExpressionsIncrementalMatchesReference drives dozens of random
// CA expressions with a random append/update stream and checks the golden
// invariant for each: accumulated deltas ≡ reference evaluation.
func TestRandomExpressionsIncrementalMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			f := newFixture(t)
			f.upsertCust(t, "a", "nj", 500)
			f.upsertCust(t, "b", "ny", 0)

			exprs := make([]Node, 5)
			for i := range exprs {
				exprs[i] = randomExpr(rng, f, 3)
			}
			accumulated := make([][]chronicle.Row, len(exprs))

			states := []string{"nj", "ny", "ca"}
			for step := 0; step < 60; step++ {
				switch rng.Intn(5) {
				case 0:
					acct := string(rune('a' + rng.Intn(3)))
					f.upsertCust(t, acct, states[rng.Intn(3)], int64(rng.Intn(100)))
					continue
				case 1:
					d := f.appendBoth(t, string(rune('a'+rng.Intn(3))), int64(rng.Intn(80)), int64(rng.Intn(40)))
					for i, e := range exprs {
						accumulated[i] = append(accumulated[i], Delta(e, d)...)
					}
				default:
					d := f.appendCall(t, string(rune('a'+rng.Intn(3))), int64(rng.Intn(80)))
					for i, e := range exprs {
						accumulated[i] = append(accumulated[i], Delta(e, d)...)
					}
				}
			}

			for i, e := range exprs {
				want, err := Evaluate(e)
				if err != nil {
					t.Fatalf("expr %d (%s): %v", i, e, err)
				}
				sameRows(t, fmt.Sprintf("expr %d: %s", i, e), accumulated[i], want)
				// Monotonicity invariant piggybacks: incremental size never
				// exceeds the reference (equality was just checked).
				info := Analyze(e)
				if info.Nodes == 0 {
					t.Errorf("expr %d: empty analysis", i)
				}
			}
		})
	}
}
