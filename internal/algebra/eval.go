package algebra

import (
	"fmt"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
)

// Evaluate computes the full output of a chronicle algebra expression from
// the retained base chronicles, set-at-a-time. It is the reference
// semantics that incremental maintenance must agree with, and the engine of
// the IM-Cᵏ recompute baseline (Proposition 3.1).
//
// Evaluate requires every base chronicle to be fully retained; it returns
// an error if any rows were discarded by a retention window — which is the
// paper's point: a system without persistent views simply cannot answer
// over a partially stored chronicle.
func Evaluate(n Node) ([]chronicle.Row, error) {
	for _, c := range Analyze(n).Chronicles {
		if c.Dropped() > 0 {
			return nil, fmt.Errorf("algebra: chronicle %s has dropped %d rows; full evaluation impossible",
				c.Name(), c.Dropped())
		}
	}
	return eval(n), nil
}

func eval(n Node) []chronicle.Row {
	switch n := n.(type) {
	case *Scan:
		return append([]chronicle.Row(nil), n.C.Rows()...)
	case *Select:
		var out []chronicle.Row
		for _, r := range eval(n.In) {
			if n.P.Eval(r.Vals) {
				out = append(out, r)
			}
		}
		return out
	case *Project:
		in := eval(n.In)
		out := make([]chronicle.Row, len(in))
		for i, r := range in {
			out[i] = chronicle.Row{SN: r.SN, Chronon: r.Chronon, LSN: r.LSN, Vals: r.Vals.Project(n.Cols)}
		}
		return out
	case *Union:
		return dedupRows(append(append([]chronicle.Row(nil), eval(n.L)...), eval(n.R)...))
	case *Diff:
		return diffRows(eval(n.L), eval(n.R))
	case *JoinSN:
		return joinSN(eval(n.L), eval(n.R))
	case *GroupBySN:
		return groupBySN(n, eval(n.In))
	case *CrossRel:
		var out []chronicle.Row
		for _, r := range eval(n.In) {
			n.R.ScanAsOf(r.LSN, func(rt value.Tuple) bool {
				out = append(out, concatRow(r, rt))
				return true
			})
		}
		return out
	case *JoinRel:
		var out []chronicle.Row
		for _, r := range eval(n.In) {
			for _, rt := range relMatches(n, r) {
				out = append(out, concatRow(r, rt))
			}
		}
		return out
	default:
		panic(fmt.Sprintf("algebra: unknown node %T", n))
	}
}
