package algebra

import (
	"chronicledb/internal/chronicle"
	"chronicledb/internal/relation"
)

// Lang is the chronicle-algebra fragment an expression belongs to
// (Definitions 4.1 and 4.2).
type Lang uint8

const (
	// LangCA1 is CA₁: no chronicle–relation operation at all.
	LangCA1 Lang = iota
	// LangCAKey is CA⋈: relation access only through key joins.
	LangCAKey
	// LangCA is full CA: cross products (or non-key joins) with relations.
	LangCA
)

// String names the fragment as in the paper.
func (l Lang) String() string {
	switch l {
	case LangCA1:
		return "CA1"
	case LangCAKey:
		return "CA⋈"
	default:
		return "CA"
	}
}

// IMClass is an incremental-maintenance complexity class (Section 3).
type IMClass uint8

const (
	// IMConstant: maintenance in constant time per append.
	IMConstant IMClass = iota
	// IMLogR: maintenance in time logarithmic in the relation sizes.
	IMLogR
	// IMRk: maintenance in time polynomial in the relation sizes.
	IMRk
	// IMCk: maintenance may need time polynomial in the chronicle size —
	// the class full relational algebra falls into (Proposition 3.1), and
	// the class every recompute baseline lives in.
	IMCk
)

// String names the class as in the paper.
func (c IMClass) String() string {
	switch c {
	case IMConstant:
		return "IM-Constant"
	case IMLogR:
		return "IM-log(R)"
	case IMRk:
		return "IM-R^k"
	default:
		return "IM-C^k"
	}
}

// Info summarizes the static analysis of a chronicle algebra expression:
// its language fragment and the parameters u (unions) and j (equijoins and
// cross products) of Theorem 4.2's bounds
//
//	CA:  Time = O((u·|R|)^j · log|R|)   Space = O((u·|R|)^j)
//	CA⋈: Time = O(u^j · log|R|)         Space = O(u^j)
//	CA₁: Time = O(u^j)                  Space = O(u^j)
type Info struct {
	Lang       Lang
	Unions     int // u
	Joins      int // j: SN-joins + relation joins + cross products
	Nodes      int
	Depth      int
	Chronicles []*chronicle.Chronicle
	Relations  []*relation.Relation
}

// IMClass returns the maintenance class of a summarized (SCA) view over
// this expression, per Theorem 4.5: SCA₁ ⊆ IM-Constant, SCA⋈ ⊆ IM-log(R),
// SCA ⊆ IM-Rᵏ.
func (i Info) IMClass() IMClass {
	switch i.Lang {
	case LangCA1:
		return IMConstant
	case LangCAKey:
		return IMLogR
	default:
		return IMRk
	}
}

// Analyze walks the expression and computes its Info.
func Analyze(n Node) Info {
	info := Info{Lang: LangCA1}
	seenC := map[*chronicle.Chronicle]bool{}
	seenR := map[*relation.Relation]bool{}
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		info.Nodes++
		if depth > info.Depth {
			info.Depth = depth
		}
		switch n := n.(type) {
		case *Scan:
			if !seenC[n.C] {
				seenC[n.C] = true
				info.Chronicles = append(info.Chronicles, n.C)
			}
		case *Union:
			info.Unions++
		case *JoinSN:
			info.Joins++
		case *CrossRel:
			info.Joins++
			info.Lang = LangCA
			if !seenR[n.R] {
				seenR[n.R] = true
				info.Relations = append(info.Relations, n.R)
			}
		case *JoinRel:
			info.Joins++
			if n.OnKey() {
				if info.Lang == LangCA1 {
					info.Lang = LangCAKey
				}
			} else {
				info.Lang = LangCA
			}
			if !seenR[n.R] {
				seenR[n.R] = true
				info.Relations = append(info.Relations, n.R)
			}
		}
		for _, c := range n.children() {
			walk(c, depth+1)
		}
	}
	walk(n, 1)
	return info
}
