// Package algebra implements the chronicle algebra (CA) of Section 4 of the
// paper, its restrictions CA⋈ and CA₁, incremental delta propagation per the
// proof of Theorem 4.1, and a from-scratch reference evaluator used by
// baselines and the test suite.
//
// A chronicle algebra expression maps chronicles (and relations) to a
// chronicle: every node's output rows carry a sequence number, a chronon,
// and an LSN alongside their attribute tuple. The operators are exactly
// those of Definition 4.1: selection, SN-preserving projection, natural
// equijoin on the sequencing attribute, union, difference, grouping that
// includes the sequencing attribute, and the (temporal) product or key-join
// with a relation. Operations that would break chronicle-hood — projecting
// out SN, grouping without SN, chronicle×chronicle products, non-equijoins
// on SN — are unrepresentable here, which is the paper's Theorem 4.3 turned
// into an API.
package algebra

import (
	"fmt"
	"strings"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/value"
)

// Node is one operator of a chronicle algebra expression tree.
type Node interface {
	// Schema is the attribute schema of the node's output rows (the
	// sequencing attribute and chronon ride alongside, outside the tuple).
	Schema() *value.Schema
	// Group is the chronicle group the expression's output belongs to
	// (Lemma 4.1: every CA view is a chronicle in the operands' group).
	Group() *chronicle.Group
	// String renders the expression for EXPLAIN output.
	String() string

	children() []Node
}

// Scan is the leaf node: a base chronicle.
type Scan struct {
	C *chronicle.Chronicle
}

// NewScan returns a leaf over the given base chronicle.
func NewScan(c *chronicle.Chronicle) *Scan { return &Scan{C: c} }

func (s *Scan) Schema() *value.Schema   { return s.C.Schema() }
func (s *Scan) Group() *chronicle.Group { return s.C.Group() }
func (s *Scan) String() string          { return s.C.Name() }
func (s *Scan) children() []Node        { return nil }

// Select is σ_p(C): tuples of C satisfying the Definition-4.1 predicate.
type Select struct {
	In Node
	P  pred.Predicate
}

// NewSelect validates the predicate against the input schema.
func NewSelect(in Node, p pred.Predicate) (*Select, error) {
	if max := p.MaxColumn(); max >= in.Schema().Len() {
		return nil, fmt.Errorf("algebra: select predicate references column %d of %d-column input", max, in.Schema().Len())
	}
	return &Select{In: in, P: p}, nil
}

func (s *Select) Schema() *value.Schema   { return s.In.Schema() }
func (s *Select) Group() *chronicle.Group { return s.In.Group() }
func (s *Select) children() []Node        { return []Node{s.In} }
func (s *Select) String() string {
	return fmt.Sprintf("σ[%s](%s)", s.P.String(s.In.Schema()), s.In)
}

// Project is Π over attributes that (implicitly) include the sequencing
// attribute: SN and chronon are always carried through.
type Project struct {
	In   Node
	Cols []int

	schema *value.Schema
}

// NewProject validates the column list.
func NewProject(in Node, cols []int) (*Project, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("algebra: projection must keep at least one column")
	}
	for _, c := range cols {
		if c < 0 || c >= in.Schema().Len() {
			return nil, fmt.Errorf("algebra: projection column %d out of range", c)
		}
	}
	return &Project{In: in, Cols: append([]int(nil), cols...), schema: in.Schema().Project(cols)}, nil
}

func (p *Project) Schema() *value.Schema   { return p.schema }
func (p *Project) Group() *chronicle.Group { return p.In.Group() }
func (p *Project) children() []Node        { return []Node{p.In} }
func (p *Project) String() string {
	return fmt.Sprintf("Π[SN,%s](%s)", strings.Join(p.schema.Names(), ","), p.In)
}

// Union is C₁ ∪ C₂ over chronicles of the same group and type. Set
// semantics: duplicate (SN, tuple) pairs appear once.
type Union struct {
	L, R Node
}

// NewUnion validates group and schema compatibility.
func NewUnion(l, r Node) (*Union, error) {
	if l.Group() != r.Group() {
		return nil, fmt.Errorf("algebra: union operands belong to different chronicle groups")
	}
	if !l.Schema().Equal(r.Schema()) {
		return nil, fmt.Errorf("algebra: union operands have different types: %s vs %s", l.Schema(), r.Schema())
	}
	return &Union{L: l, R: r}, nil
}

func (u *Union) Schema() *value.Schema   { return u.L.Schema() }
func (u *Union) Group() *chronicle.Group { return u.L.Group() }
func (u *Union) children() []Node        { return []Node{u.L, u.R} }
func (u *Union) String() string          { return fmt.Sprintf("(%s ∪ %s)", u.L, u.R) }

// Diff is C₁ − C₂ over chronicles of the same group and type.
type Diff struct {
	L, R Node
}

// NewDiff validates group and schema compatibility.
func NewDiff(l, r Node) (*Diff, error) {
	if l.Group() != r.Group() {
		return nil, fmt.Errorf("algebra: difference operands belong to different chronicle groups")
	}
	if !l.Schema().Equal(r.Schema()) {
		return nil, fmt.Errorf("algebra: difference operands have different types: %s vs %s", l.Schema(), r.Schema())
	}
	return &Diff{L: l, R: r}, nil
}

func (d *Diff) Schema() *value.Schema   { return d.L.Schema() }
func (d *Diff) Group() *chronicle.Group { return d.L.Group() }
func (d *Diff) children() []Node        { return []Node{d.L, d.R} }
func (d *Diff) String() string          { return fmt.Sprintf("(%s − %s)", d.L, d.R) }

// JoinSN is the natural equijoin of two chronicles of one group on the
// sequencing attribute; one SN is projected out of the result (we carry SN
// outside the tuple, so the output schema is simply the concatenation).
type JoinSN struct {
	L, R Node

	schema *value.Schema
}

// NewJoinSN validates that both operands share a chronicle group.
func NewJoinSN(l, r Node) (*JoinSN, error) {
	if l.Group() != r.Group() {
		return nil, fmt.Errorf("algebra: SN-join operands belong to different chronicle groups")
	}
	return &JoinSN{L: l, R: r, schema: l.Schema().Concat(r.Schema(), "r.")}, nil
}

func (j *JoinSN) Schema() *value.Schema   { return j.schema }
func (j *JoinSN) Group() *chronicle.Group { return j.L.Group() }
func (j *JoinSN) children() []Node        { return []Node{j.L, j.R} }
func (j *JoinSN) String() string          { return fmt.Sprintf("(%s ⋈SN %s)", j.L, j.R) }

// GroupBySN is GROUPBY(C, GL, AL) where the grouping list GL includes the
// sequencing attribute (Definition 4.1). GroupCols lists the additional
// grouping attributes; SN is always part of the group key.
type GroupBySN struct {
	In        Node
	GroupCols []int
	Aggs      []aggregate.Spec

	schema *value.Schema
}

// NewGroupBySN validates grouping columns and aggregation specs.
func NewGroupBySN(in Node, groupCols []int, aggs []aggregate.Spec) (*GroupBySN, error) {
	inSchema := in.Schema()
	for _, c := range groupCols {
		if c < 0 || c >= inSchema.Len() {
			return nil, fmt.Errorf("algebra: grouping column %d out of range", c)
		}
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("algebra: grouping requires at least one aggregation")
	}
	cols := make([]value.Column, 0, len(groupCols)+len(aggs))
	for _, c := range groupCols {
		cols = append(cols, inSchema.Col(c))
	}
	for _, a := range aggs {
		if a.Col >= inSchema.Len() || (a.Col < 0 && a.Func != aggregate.Count) {
			return nil, fmt.Errorf("algebra: aggregation %s references column %d out of range", a.Func, a.Col)
		}
		in := value.KindInt
		if a.Col >= 0 {
			in = inSchema.Col(a.Col).Kind
		}
		if a.Name == "" {
			return nil, fmt.Errorf("algebra: aggregation %s needs an output name", a.Func)
		}
		cols = append(cols, value.Column{Name: a.Name, Kind: a.ResultKind(in)})
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("algebra: grouping output column %q duplicated", c.Name)
		}
		seen[c.Name] = true
	}
	return &GroupBySN{
		In:        in,
		GroupCols: append([]int(nil), groupCols...),
		Aggs:      append([]aggregate.Spec(nil), aggs...),
		schema:    value.NewSchema(cols...),
	}, nil
}

func (g *GroupBySN) Schema() *value.Schema   { return g.schema }
func (g *GroupBySN) Group() *chronicle.Group { return g.In.Group() }
func (g *GroupBySN) children() []Node        { return []Node{g.In} }
func (g *GroupBySN) String() string {
	aggs := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		aggs[i] = a.String(g.In.Schema())
	}
	groups := make([]string, 0, len(g.GroupCols)+1)
	groups = append(groups, "SN")
	for _, c := range g.GroupCols {
		groups = append(groups, g.In.Schema().Col(c).Name)
	}
	return fmt.Sprintf("γ[%s; %s](%s)", strings.Join(groups, ","), strings.Join(aggs, ","), g.In)
}

// CrossRel is C × R: the (implicitly temporal) product of a chronicle
// expression with a relation. Each chronicle tuple pairs with every tuple of
// the relation version at the chronicle tuple's instant (Section 2.3).
// CrossRel keeps an expression in CA but not in CA⋈: its delta costs
// O(|R|) per chronicle tuple, which is what Theorem 4.5's IM-Rᵏ bound allows.
type CrossRel struct {
	In Node
	R  *relation.Relation

	schema *value.Schema
}

// NewCrossRel builds the temporal product node.
func NewCrossRel(in Node, r *relation.Relation) (*CrossRel, error) {
	if r == nil {
		return nil, fmt.Errorf("algebra: cross product requires a relation")
	}
	return &CrossRel{In: in, R: r, schema: in.Schema().Concat(r.Schema(), r.Name()+".")}, nil
}

func (c *CrossRel) Schema() *value.Schema   { return c.schema }
func (c *CrossRel) Group() *chronicle.Group { return c.In.Group() }
func (c *CrossRel) children() []Node        { return []Node{c.In} }
func (c *CrossRel) String() string          { return fmt.Sprintf("(%s × %s)", c.In, c.R.Name()) }

// JoinRel is the CA⋈ replacement for CrossRel (Definition 4.2): an equijoin
// of chronicle attributes with relation attributes. When RelCols is the
// relation's key, at most one relation tuple joins with each chronicle
// tuple and the delta costs O(log|R|) — the IM-log(R) guarantee. Non-key
// joins are permitted but classify the expression as plain CA.
type JoinRel struct {
	In      Node
	R       *relation.Relation
	InCols  []int // chronicle-side join columns
	RelCols []int // relation-side join columns

	schema *value.Schema
	onKey  bool
}

// NewJoinRel validates the join columns and records whether the join is on
// the relation's key.
func NewJoinRel(in Node, r *relation.Relation, inCols, relCols []int) (*JoinRel, error) {
	if r == nil {
		return nil, fmt.Errorf("algebra: relation join requires a relation")
	}
	if len(inCols) == 0 || len(inCols) != len(relCols) {
		return nil, fmt.Errorf("algebra: relation join needs matching, non-empty column lists")
	}
	for _, c := range inCols {
		if c < 0 || c >= in.Schema().Len() {
			return nil, fmt.Errorf("algebra: join column %d out of chronicle range", c)
		}
	}
	for i, c := range relCols {
		if c < 0 || c >= r.Schema().Len() {
			return nil, fmt.Errorf("algebra: join column %d out of relation range", c)
		}
		ck, rk := in.Schema().Col(inCols[i]).Kind, r.Schema().Col(c).Kind
		numeric := func(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }
		if ck != rk && !(numeric(ck) && numeric(rk)) {
			return nil, fmt.Errorf("algebra: join column kinds differ: %s vs %s", ck, rk)
		}
	}
	return &JoinRel{
		In:      in,
		R:       r,
		InCols:  append([]int(nil), inCols...),
		RelCols: append([]int(nil), relCols...),
		schema:  in.Schema().Concat(r.Schema(), r.Name()+"."),
		onKey:   r.IsKey(relCols),
	}, nil
}

// OnKey reports whether the join is on the relation's key — Definition
// 4.2's sufficient condition for CA⋈ membership.
func (j *JoinRel) OnKey() bool { return j.onKey }

func (j *JoinRel) Schema() *value.Schema   { return j.schema }
func (j *JoinRel) Group() *chronicle.Group { return j.In.Group() }
func (j *JoinRel) children() []Node        { return []Node{j.In} }
func (j *JoinRel) String() string {
	parts := make([]string, len(j.InCols))
	for i := range j.InCols {
		parts[i] = fmt.Sprintf("%s=%s", j.In.Schema().Col(j.InCols[i]).Name, j.R.Schema().Col(j.RelCols[i]).Name)
	}
	op := "⋈"
	if !j.onKey {
		op = "⋈(non-key)"
	}
	return fmt.Sprintf("(%s %s[%s] %s)", j.In, op, strings.Join(parts, ","), j.R.Name())
}
