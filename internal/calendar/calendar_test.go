package calendar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/value"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Start: 10, End: 20}
	if !iv.Contains(10) || !iv.Contains(19) {
		t.Error("half-open containment: start inclusive")
	}
	if iv.Contains(9) || iv.Contains(20) {
		t.Error("half-open containment: end exclusive")
	}
	if !iv.Overlaps(Interval{19, 25}) || iv.Overlaps(Interval{20, 25}) {
		t.Error("Overlaps boundary")
	}
	if iv.String() != "[10,20)" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestFixedCalendar(t *testing.T) {
	if _, err := NewFixed(Interval{5, 5}); err == nil {
		t.Error("degenerate interval accepted")
	}
	f, err := NewFixed(Interval{20, 30}, Interval{0, 10}, Interval{5, 25})
	if err != nil {
		t.Fatal(err)
	}
	ivs := f.Intervals()
	if ivs[0].Start != 0 || ivs[1].Start != 5 || ivs[2].Start != 20 {
		t.Errorf("Intervals not sorted: %v", ivs)
	}
	if got := f.IntervalsAt(7); len(got) != 2 {
		t.Errorf("IntervalsAt(7) = %v", got)
	}
	if got := f.IntervalsAt(22); len(got) != 2 {
		t.Errorf("IntervalsAt(22) = %v", got)
	}
	if got := f.IntervalsAt(50); got != nil {
		t.Errorf("IntervalsAt(50) = %v", got)
	}
}

func TestPeriodicNonOverlapping(t *testing.T) {
	if _, err := NewPeriodic(0, 0, 10); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewPeriodic(0, 10, 0); err == nil {
		t.Error("zero width accepted")
	}
	p, _ := NewPeriodic(100, 10, 10) // months of width 10 starting at 100
	if got := p.IntervalsAt(99); got != nil {
		t.Errorf("before offset: %v", got)
	}
	got := p.IntervalsAt(105)
	if len(got) != 1 || got[0] != (Interval{100, 110}) {
		t.Errorf("IntervalsAt(105) = %v", got)
	}
	got = p.IntervalsAt(110)
	if len(got) != 1 || got[0] != (Interval{110, 120}) {
		t.Errorf("IntervalsAt(110) = %v", got)
	}
	if p.MaxOverlap() != 1 {
		t.Errorf("MaxOverlap = %d", p.MaxOverlap())
	}
	if k, ok := p.IntervalIndex(Interval{130, 140}); !ok || k != 3 {
		t.Errorf("IntervalIndex = %d, %v", k, ok)
	}
	if _, ok := p.IntervalIndex(Interval{131, 141}); ok {
		t.Error("foreign interval recognized")
	}
}

func TestPeriodicOverlapping(t *testing.T) {
	// Daily 30-day windows: period 1, width 30.
	p, _ := NewPeriodic(0, 1, 30)
	got := p.IntervalsAt(100)
	if len(got) != 30 {
		t.Fatalf("IntervalsAt = %d intervals, want 30", len(got))
	}
	if got[0] != (Interval{71, 101}) || got[29] != (Interval{100, 130}) {
		t.Errorf("window bounds: first %v last %v", got[0], got[29])
	}
	if p.MaxOverlap() != 30 {
		t.Errorf("MaxOverlap = %d", p.MaxOverlap())
	}
	// Early chronons see fewer windows (none start before the offset).
	if got := p.IntervalsAt(3); len(got) != 4 {
		t.Errorf("IntervalsAt(3) = %d intervals, want 4", len(got))
	}
}

func TestPeriodicIntervalsAtQuick(t *testing.T) {
	f := func(offRaw, chRaw int32, perRaw, widRaw uint8) bool {
		offset := int64(offRaw % 1000)
		period := int64(perRaw%50) + 1
		width := int64(widRaw%80) + 1
		ch := int64(chRaw % 10000)
		p, err := NewPeriodic(offset, period, width)
		if err != nil {
			return false
		}
		got := p.IntervalsAt(ch)
		// Brute force over plausible k range.
		var want []Interval
		for k := int64(0); ; k++ {
			start := offset + k*period
			if start > ch {
				break
			}
			if iv := (Interval{start, start + width}); iv.Contains(ch) {
				want = append(want, iv)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMovingWindowMatchesNaive(t *testing.T) {
	for _, fn := range []aggregate.Func{aggregate.Sum, aggregate.Count, aggregate.Max, aggregate.Min} {
		ring, err := NewMovingWindow(fn, 1, 30)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewNaiveWindow(fn, 30)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(fn)))
		ch := int64(0)
		for i := 0; i < 2000; i++ {
			ch += int64(rng.Intn(4)) // time moves forward, sometimes skipping buckets
			key := string(rune('a' + rng.Intn(3)))
			v := value.Int(int64(rng.Intn(100)))
			ring.Add(key, ch, v)
			naive.Add(key, ch, v)
			if i%17 == 0 {
				for _, k := range []string{"a", "b", "c"} {
					got, want := ring.Value(k, ch), naive.Value(k, ch)
					if !value.Equal(got, want) {
						t.Fatalf("%s key %s at ch %d: ring %v != naive %v", fn, k, ch, got, want)
					}
				}
			}
		}
	}
}

func TestMovingWindowLargeGapClears(t *testing.T) {
	ring, _ := NewMovingWindow(aggregate.Sum, 1, 5)
	ring.Add("k", 0, value.Int(10))
	if got := ring.Value("k", 0); got.AsInt() != 10 {
		t.Fatalf("Value = %v", got)
	}
	// A gap larger than the window expires everything.
	if got := ring.Value("k", 100); !got.IsNull() {
		t.Errorf("after gap: %v, want null (empty SUM)", got)
	}
	if got := ring.Value("missing", 0); !got.IsNull() {
		t.Errorf("missing key: %v", got)
	}
	if ring.Buckets() != 5 {
		t.Errorf("Buckets = %d", ring.Buckets())
	}
}

func TestMovingSumMatchesWindow(t *testing.T) {
	fast, _ := NewMovingSum(1, 30)
	ring, _ := NewMovingWindow(aggregate.Sum, 1, 30)
	rng := rand.New(rand.NewSource(9))
	ch := int64(0)
	for i := 0; i < 3000; i++ {
		ch += int64(rng.Intn(3))
		amt := float64(rng.Intn(50))
		fast.Add("k", ch, amt)
		ring.Add("k", ch, value.Float(amt))
		if i%13 == 0 {
			got := fast.Value("k", ch)
			want := ring.Value("k", ch)
			wantF := 0.0
			if !want.IsNull() {
				wantF = want.AsFloat()
			}
			if got != wantF {
				t.Fatalf("at ch %d: fast %v != ring %v", ch, got, wantF)
			}
		}
	}
	if fast.Value("missing", 0) != 0 {
		t.Error("missing key should be 0")
	}
}

func TestWindowConstructorErrors(t *testing.T) {
	if _, err := NewMovingWindow(aggregate.Sum, 0, 5); err == nil {
		t.Error("zero bucket width accepted")
	}
	if _, err := NewMovingWindow(aggregate.Sum, 1, 0); err == nil {
		t.Error("zero bucket count accepted")
	}
	if _, err := NewMovingSum(0, 5); err == nil {
		t.Error("zero bucket width accepted")
	}
	if _, err := NewNaiveWindow(aggregate.Sum, 0); err == nil {
		t.Error("zero span accepted")
	}
}
