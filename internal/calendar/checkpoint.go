package calendar

import (
	"encoding/binary"
	"fmt"

	"chronicledb/internal/view"
)

// Periodic-view checkpoints: each live instance's interval and view state,
// plus the counters that drive expiration. Without this, truncating the WAL
// at a checkpoint would silently reset every open billing period.

const pvMagic = "CDBP"

// Checkpoint serializes the family's live instances.
func (p *PeriodicView) Checkpoint() []byte {
	var b []byte
	b = append(b, pvMagic...)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.maxSeen))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.created))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.expired))
	infos := p.Instances()
	b = binary.AppendUvarint(b, uint64(len(infos)))
	for _, inst := range infos {
		b = binary.LittleEndian.AppendUint64(b, uint64(inst.Interval.Start))
		b = binary.LittleEndian.AppendUint64(b, uint64(inst.Interval.End))
		snap := inst.View.Checkpoint()
		b = binary.AppendUvarint(b, uint64(len(snap)))
		b = append(b, snap...)
	}
	return b
}

// RestoreCheckpoint replaces the family's instances with a checkpoint
// produced by a family with the same definition.
func (p *PeriodicView) RestoreCheckpoint(data []byte) error {
	if len(data) < 4+24 || string(data[:4]) != pvMagic {
		return fmt.Errorf("calendar: %s: bad periodic checkpoint", p.name)
	}
	off := 4
	maxSeen := int64(binary.LittleEndian.Uint64(data[off:]))
	created := int64(binary.LittleEndian.Uint64(data[off+8:]))
	expired := int64(binary.LittleEndian.Uint64(data[off+16:]))
	off += 24
	count, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return fmt.Errorf("calendar: %s: bad instance count", p.name)
	}
	off += n

	instances := make(map[Interval]*view.View, count)
	for i := uint64(0); i < count; i++ {
		if len(data)-off < 16 {
			return fmt.Errorf("calendar: %s: truncated instance %d", p.name, i)
		}
		iv := Interval{
			Start: int64(binary.LittleEndian.Uint64(data[off:])),
			End:   int64(binary.LittleEndian.Uint64(data[off+8:])),
		}
		off += 16
		snapLen, n := binary.Uvarint(data[off:])
		if n <= 0 || uint64(len(data)-off-n) < snapLen {
			return fmt.Errorf("calendar: %s: truncated instance snapshot %d", p.name, i)
		}
		off += n
		def := p.def
		def.Name = fmt.Sprintf("%s%s", p.name, iv)
		v, err := view.New(def, p.kind)
		if err != nil {
			return fmt.Errorf("calendar: %s: %w", p.name, err)
		}
		if err := v.RestoreCheckpoint(data[off : off+int(snapLen)]); err != nil {
			return fmt.Errorf("calendar: %s: instance %s: %w", p.name, iv, err)
		}
		off += int(snapLen)
		instances[iv] = v
	}
	if off != len(data) {
		return fmt.Errorf("calendar: %s: %d trailing checkpoint bytes", p.name, len(data)-off)
	}
	p.instances = instances
	p.maxSeen = maxSeen
	p.created = created
	p.expired = expired
	return nil
}
