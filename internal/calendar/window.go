package calendar

import (
	"fmt"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/value"
)

// Moving-window aggregation (Section 5.1). The paper's example: "a periodic
// view for every day that computes the total number of shares of a stock
// sold during the 30 days preceding that day … keep the total number of
// shares sold for each of the last 30 days separately, and derive the view
// as the sum of these 30 numbers. Moving from one periodic view to the next
// one involves shifting a cyclic buffer of these 30 numbers."
//
// MovingWindow is that cyclic buffer, generalized to any decomposable
// aggregation function and keyed by group. Appends cost O(1); deriving the
// current window value merges the W bucket partials — independent of how
// many records fell inside the window. NaiveWindow is the strawman that
// retains raw records and re-aggregates; E6 compares the two.

// MovingWindow maintains per-key cyclic buffers of per-bucket aggregation
// partials.
type MovingWindow struct {
	fn          aggregate.Func
	bucketWidth int64 // chronon width of one bucket
	n           int   // number of buckets in the window
	byKey       map[string]*winRing
}

type winRing struct {
	lastBucket int64 // absolute index of the newest bucket
	states     []aggregate.State
	started    bool
}

// NewMovingWindow creates a window of n buckets of the given chronon width.
func NewMovingWindow(fn aggregate.Func, bucketWidth int64, n int) (*MovingWindow, error) {
	if bucketWidth <= 0 || n <= 0 {
		return nil, fmt.Errorf("calendar: window needs positive bucket width and count")
	}
	return &MovingWindow{fn: fn, bucketWidth: bucketWidth, n: n, byKey: make(map[string]*winRing)}, nil
}

// Buckets returns the window length in buckets.
func (w *MovingWindow) Buckets() int { return w.n }

// Add folds v into key's bucket for the given chronon. Chronons must be
// non-decreasing per key (appends arrive in sequence order).
func (w *MovingWindow) Add(key string, chronon int64, v value.Value) {
	r := w.ring(key)
	w.advance(r, chronon/w.bucketWidth)
	r.states[int(r.lastBucket%int64(w.n)+int64(w.n))%w.n].Step(v)
}

// Value derives the aggregate over the last n buckets ending at the bucket
// containing chronon — the "sum of these 30 numbers".
func (w *MovingWindow) Value(key string, chronon int64) value.Value {
	r, ok := w.byKey[key]
	if !ok {
		// An absent key aggregates like an empty group (COUNT 0, SUM null).
		return aggregate.NewState(w.fn).Result()
	}
	w.advance(r, chronon/w.bucketWidth)
	merged := aggregate.NewState(w.fn)
	for _, s := range r.states {
		merged.Merge(s)
	}
	return merged.Result()
}

func (w *MovingWindow) ring(key string) *winRing {
	r, ok := w.byKey[key]
	if !ok {
		states := make([]aggregate.State, w.n)
		for i := range states {
			states[i] = aggregate.NewState(w.fn)
		}
		r = &winRing{states: states}
		w.byKey[key] = r
	}
	return r
}

// advance rotates the ring forward to the given absolute bucket, clearing
// buckets that fall out of the window.
func (w *MovingWindow) advance(r *winRing, bucket int64) {
	if !r.started {
		r.lastBucket = bucket
		r.started = true
		return
	}
	if bucket <= r.lastBucket {
		return
	}
	steps := bucket - r.lastBucket
	if steps >= int64(w.n) {
		for i := range r.states {
			r.states[i] = aggregate.NewState(w.fn)
		}
	} else {
		for b := r.lastBucket + 1; b <= bucket; b++ {
			r.states[int(b%int64(w.n)+int64(w.n))%w.n] = aggregate.NewState(w.fn)
		}
	}
	r.lastBucket = bucket
}

// MovingSum is the O(1)-query fast path for SUM: because SUM is invertible,
// the running window total is maintained by subtracting each expiring
// bucket, so neither Add nor Value touches all W buckets.
type MovingSum struct {
	bucketWidth int64
	n           int
	byKey       map[string]*sumRing
}

type sumRing struct {
	lastBucket int64
	buckets    []float64
	total      float64
	started    bool
}

// NewMovingSum creates an O(1) moving sum of n buckets.
func NewMovingSum(bucketWidth int64, n int) (*MovingSum, error) {
	if bucketWidth <= 0 || n <= 0 {
		return nil, fmt.Errorf("calendar: window needs positive bucket width and count")
	}
	return &MovingSum{bucketWidth: bucketWidth, n: n, byKey: make(map[string]*sumRing)}, nil
}

// Add folds amount into key's current bucket.
func (w *MovingSum) Add(key string, chronon int64, amount float64) {
	r, ok := w.byKey[key]
	if !ok {
		r = &sumRing{buckets: make([]float64, w.n)}
		w.byKey[key] = r
	}
	w.advance(r, chronon/w.bucketWidth)
	r.buckets[int(r.lastBucket%int64(w.n)+int64(w.n))%w.n] += amount
	r.total += amount
}

// Value returns the window sum as of chronon.
func (w *MovingSum) Value(key string, chronon int64) float64 {
	r, ok := w.byKey[key]
	if !ok {
		return 0
	}
	w.advance(r, chronon/w.bucketWidth)
	return r.total
}

func (w *MovingSum) advance(r *sumRing, bucket int64) {
	if !r.started {
		r.lastBucket = bucket
		r.started = true
		return
	}
	for b := r.lastBucket + 1; b <= bucket; b++ {
		if b-r.lastBucket > int64(w.n) {
			// Everything expired; clear in one sweep.
			for i := range r.buckets {
				r.buckets[i] = 0
			}
			r.total = 0
			break
		}
		idx := int(b%int64(w.n)+int64(w.n)) % w.n
		r.total -= r.buckets[idx]
		r.buckets[idx] = 0
	}
	r.lastBucket = bucket
}

// NaiveWindow is the baseline: it retains every raw record and
// re-aggregates the window on each query — O(records in window), the cost
// the cyclic buffer exists to avoid.
type NaiveWindow struct {
	fn     aggregate.Func
	window int64 // chronon span covered
	byKey  map[string][]event
}

type event struct {
	chronon int64
	v       value.Value
}

// NewNaiveWindow creates the re-aggregating baseline covering a span of
// window chronons.
func NewNaiveWindow(fn aggregate.Func, window int64) (*NaiveWindow, error) {
	if window <= 0 {
		return nil, fmt.Errorf("calendar: window span must be positive")
	}
	return &NaiveWindow{fn: fn, window: window, byKey: make(map[string][]event)}, nil
}

// Add records one event.
func (w *NaiveWindow) Add(key string, chronon int64, v value.Value) {
	evs := append(w.byKey[key], event{chronon, v})
	// Trim expired prefix (events arrive in chronon order).
	cut := 0
	for cut < len(evs) && evs[cut].chronon <= chronon-w.window {
		cut++
	}
	w.byKey[key] = evs[cut:]
}

// Value re-aggregates the retained window as of chronon.
func (w *NaiveWindow) Value(key string, chronon int64) value.Value {
	s := aggregate.NewState(w.fn)
	for _, e := range w.byKey[key] {
		if e.chronon > chronon-w.window && e.chronon <= chronon {
			s.Step(e.v)
		}
	}
	return s.Result()
}
