package calendar

import (
	"testing"

	"chronicledb/internal/aggregate"
	"chronicledb/internal/algebra"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
)

type pvFixture struct {
	group *chronicle.Group
	calls *chronicle.Chronicle
	lsn   uint64
}

func newPVFixture(t testing.TB) *pvFixture {
	t.Helper()
	g := chronicle.NewGroup("g")
	calls, err := g.NewChronicle("calls", value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "minutes", Kind: value.KindInt},
	), chronicle.RetainNone) // the pure model: nothing stored
	if err != nil {
		t.Fatal(err)
	}
	return &pvFixture{group: g, calls: calls}
}

func (f *pvFixture) append(t testing.TB, chronon int64, acct string, minutes int64) algebra.BatchDelta {
	t.Helper()
	f.lsn++
	rows, err := f.calls.Append(f.group.NextSN(), chronon, f.lsn,
		[]value.Tuple{{value.Str(acct), value.Int(minutes)}})
	if err != nil {
		t.Fatal(err)
	}
	return algebra.BatchDelta{f.calls: rows}
}

func (f *pvFixture) viewDef() view.Def {
	return view.Def{
		Expr:      algebra.NewScan(f.calls),
		Mode:      view.SummarizeGroupBy,
		GroupCols: []int{0},
		Aggs:      []aggregate.Spec{{Func: aggregate.Sum, Col: 1, Name: "total"}},
	}
}

func TestNewPeriodicViewValidation(t *testing.T) {
	f := newPVFixture(t)
	cal, _ := NewPeriodic(0, 100, 100)
	if _, err := NewPeriodicView("", f.viewDef(), cal, 0, view.StoreHash); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewPeriodicView("v", f.viewDef(), nil, 0, view.StoreHash); err == nil {
		t.Error("nil calendar accepted")
	}
	bad := f.viewDef()
	bad.GroupCols = []int{7}
	if _, err := NewPeriodicView("v", bad, cal, 0, view.StoreHash); err == nil {
		t.Error("invalid inner definition accepted")
	}
}

func TestBillingPeriods(t *testing.T) {
	f := newPVFixture(t)
	cal, _ := NewPeriodic(0, 100, 100) // "months" of 100 chronons
	pv, err := NewPeriodicView("monthly_minutes", f.viewDef(), cal, -1, view.StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	// Month 0: two calls. Month 1: one call.
	mustApply(t, pv, f.append(t, 10, "a", 5), 10)
	mustApply(t, pv, f.append(t, 90, "a", 7), 90)
	mustApply(t, pv, f.append(t, 150, "a", 100), 150)

	m0, ok := pv.At(Interval{0, 100})
	if !ok {
		t.Fatal("month 0 instance missing")
	}
	if got, _ := m0.Lookup(value.Tuple{value.Str("a")}); got[1].AsInt() != 12 {
		t.Errorf("month 0 total = %v", got)
	}
	m1, ok := pv.At(Interval{100, 200})
	if !ok {
		t.Fatal("month 1 instance missing")
	}
	if got, _ := m1.Lookup(value.Tuple{value.Str("a")}); got[1].AsInt() != 100 {
		t.Errorf("month 1 total = %v", got)
	}
	if pv.Live() != 2 || pv.Created() != 2 {
		t.Errorf("Live=%d Created=%d", pv.Live(), pv.Created())
	}
	infos := pv.Instances()
	if len(infos) != 2 || infos[0].Interval.Start != 0 || infos[1].Interval.Start != 100 {
		t.Errorf("Instances = %v", infos)
	}
}

func TestExpiration(t *testing.T) {
	f := newPVFixture(t)
	cal, _ := NewPeriodic(0, 100, 100)
	pv, err := NewPeriodicView("v", f.viewDef(), cal, 50, view.StoreHash) // 50-chronon grace
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, pv, f.append(t, 10, "a", 1), 10)
	mustApply(t, pv, f.append(t, 110, "a", 1), 110) // month 0 not yet expired (ends 100, grace to 150)
	if pv.Live() != 2 {
		t.Fatalf("Live = %d", pv.Live())
	}
	mustApply(t, pv, f.append(t, 160, "a", 1), 160) // now month 0 expires
	if pv.Live() != 1 {
		t.Errorf("Live = %d (only month 1 remains)", pv.Live())
	}
	if _, ok := pv.At(Interval{0, 100}); ok {
		t.Error("expired instance still live")
	}
	if pv.Expired() != 1 {
		t.Errorf("Expired = %d", pv.Expired())
	}
}

func TestOverlappingWindows(t *testing.T) {
	f := newPVFixture(t)
	cal, _ := NewPeriodic(0, 10, 30) // every 10 chronons, 30-chronon window
	pv, err := NewPeriodicView("moving", f.viewDef(), cal, 0, view.StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	// One call at ch 25 lands in windows starting at 0, 10, 20.
	mustApply(t, pv, f.append(t, 25, "a", 4), 25)
	if pv.Live() != 3 {
		t.Fatalf("Live = %d, want 3 overlapping instances", pv.Live())
	}
	for _, start := range []int64{0, 10, 20} {
		v, ok := pv.At(Interval{start, start + 30})
		if !ok {
			t.Fatalf("window [%d,%d) missing", start, start+30)
		}
		if got, _ := v.Lookup(value.Tuple{value.Str("a")}); got[1].AsInt() != 4 {
			t.Errorf("window [%d,.) total = %v", start, got)
		}
	}
	active := pv.ActiveAt(25)
	if len(active) != 3 {
		t.Errorf("ActiveAt = %d", len(active))
	}
}

// TestPeriodicOverRetainNoneChronicle: the family maintains correctly even
// though the chronicle stores nothing — the chronicle model's core promise.
func TestPeriodicOverRetainNoneChronicle(t *testing.T) {
	f := newPVFixture(t)
	if f.calls.Len() != 0 {
		t.Fatal("fixture should retain nothing")
	}
	cal, _ := NewPeriodic(0, 100, 100)
	pv, _ := NewPeriodicView("v", f.viewDef(), cal, -1, view.StoreHash)
	for i := int64(0); i < 250; i += 10 {
		mustApply(t, pv, f.append(t, i, "a", 1), i)
	}
	if f.calls.Len() != 0 {
		t.Fatal("chronicle stored rows despite RetainNone")
	}
	m2, ok := pv.At(Interval{200, 300})
	if !ok {
		t.Fatal("month 2 missing")
	}
	if got, _ := m2.Lookup(value.Tuple{value.Str("a")}); got[1].AsInt() != 5 {
		t.Errorf("month 2 total = %v (calls at 200,210,220,230,240)", got)
	}
}

func mustApply(t testing.TB, pv *PeriodicView, d algebra.BatchDelta, chronon int64) {
	t.Helper()
	if err := pv.Apply(d, chronon); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicCheckpointRoundTrip(t *testing.T) {
	f := newPVFixture(t)
	cal, _ := NewPeriodic(0, 100, 100)
	pv, err := NewPeriodicView("monthly", f.viewDef(), cal, 150, view.StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, pv, f.append(t, 10, "a", 5), 10)
	mustApply(t, pv, f.append(t, 120, "a", 7), 120)
	snap := pv.Checkpoint()

	pv2, err := NewPeriodicView("monthly", f.viewDef(), cal, 150, view.StoreHash)
	if err != nil {
		t.Fatal(err)
	}
	if err := pv2.RestoreCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	if pv2.Live() != 2 || pv2.Created() != 2 || pv2.Expired() != 0 {
		t.Errorf("Live=%d Created=%d Expired=%d", pv2.Live(), pv2.Created(), pv2.Expired())
	}
	m0, ok := pv2.At(Interval{0, 100})
	if !ok {
		t.Fatal("month 0 missing after restore")
	}
	if got, _ := m0.Lookup(value.Tuple{value.Str("a")}); got[1].AsInt() != 5 {
		t.Errorf("restored month 0 = %v", got)
	}
	// The restored family keeps maintaining and expiring correctly.
	mustApply(t, pv2, f.append(t, 260, "a", 1), 260) // expires month 0 (end 100 + 150 <= 260)
	if _, ok := pv2.At(Interval{0, 100}); ok {
		t.Error("restored family did not expire month 0")
	}
	if pv2.Expired() != 1 {
		t.Errorf("Expired = %d", pv2.Expired())
	}
}

func TestPeriodicCheckpointErrors(t *testing.T) {
	f := newPVFixture(t)
	cal, _ := NewPeriodic(0, 100, 100)
	pv, _ := NewPeriodicView("monthly", f.viewDef(), cal, -1, view.StoreHash)
	mustApply(t, pv, f.append(t, 10, "a", 5), 10)
	snap := pv.Checkpoint()

	if err := pv.RestoreCheckpoint(nil); err == nil {
		t.Error("empty checkpoint accepted")
	}
	bad := append([]byte("ZZZZ"), snap[4:]...)
	if err := pv.RestoreCheckpoint(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if err := pv.RestoreCheckpoint(snap[:len(snap)-2]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	trailing := append(append([]byte(nil), snap...), 1)
	if err := pv.RestoreCheckpoint(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Original state intact after failed restores.
	if pv.Live() != 1 {
		t.Errorf("Live = %d after failed restores", pv.Live())
	}
}
