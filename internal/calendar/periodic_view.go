package calendar

import (
	"fmt"
	"sort"

	"chronicledb/internal/algebra"
	"chronicledb/internal/view"
)

// PeriodicView is V<D>: a family of SCA view instances, one per calendar
// interval (Section 5.1). Instances are created lazily when their interval
// first receives a tuple ("starting to maintain a view as soon as its time
// interval starts") and dropped once the stream's chronon passes their
// expiration time, so only finitely many are ever live.
type PeriodicView struct {
	name        string
	def         view.Def
	cal         Calendar
	kind        view.StoreKind
	expireAfter int64 // chronons past interval end; <0 keeps instances forever

	instances map[Interval]*view.View
	maxSeen   int64 // high-water chronon, drives expiration
	created   int64
	expired   int64
	applies   int64 // maintenance invocations; the checkpoint dirty marker
}

// NewPeriodicView builds the family. def is the per-interval SCA view
// definition; expireAfter is the grace period after an interval's end
// before its instance is discarded (negative keeps all instances).
func NewPeriodicView(name string, def view.Def, cal Calendar, expireAfter int64, kind view.StoreKind) (*PeriodicView, error) {
	if name == "" {
		return nil, fmt.Errorf("calendar: periodic view needs a name")
	}
	if cal == nil {
		return nil, fmt.Errorf("calendar: periodic view %s needs a calendar", name)
	}
	// Validate the definition once by instantiating a throwaway view.
	probe := def
	probe.Name = name + "[probe]"
	if _, err := view.New(probe, kind); err != nil {
		return nil, fmt.Errorf("calendar: periodic view %s: %w", name, err)
	}
	return &PeriodicView{
		name:        name,
		def:         def,
		cal:         cal,
		kind:        kind,
		expireAfter: expireAfter,
		instances:   make(map[Interval]*view.View),
	}, nil
}

// Name returns the family name.
func (p *PeriodicView) Name() string { return p.name }

// Calendar returns the family's calendar.
func (p *PeriodicView) Calendar() Calendar { return p.cal }

// Live returns the number of live instances.
func (p *PeriodicView) Live() int { return len(p.instances) }

// Created returns the number of instances ever created.
func (p *PeriodicView) Created() int64 { return p.created }

// Expired returns the number of instances dropped by expiration.
func (p *PeriodicView) Expired() int64 { return p.expired }

// Applies counts maintenance invocations ever applied (including rounds
// that only advanced expiration). Incremental checkpoints use it as the
// monotonic dirty marker: an unchanged count means unchanged state.
func (p *PeriodicView) Applies() int64 { return p.applies }

// Apply routes one append batch (stamped with its chronon) to every view
// instance whose interval contains the chronon, creating instances on
// demand, then expires instances whose grace period has passed. Only the
// currently active instances are maintained — the Section 5.2 requirement
// that "only these periodic views need to be maintained upon insertions".
func (p *PeriodicView) Apply(d algebra.BatchDelta, chronon int64) error {
	p.applies++
	if chronon > p.maxSeen {
		p.maxSeen = chronon
	}
	for _, iv := range p.cal.IntervalsAt(chronon) {
		inst, ok := p.instances[iv]
		if !ok {
			def := p.def
			def.Name = fmt.Sprintf("%s%s", p.name, iv)
			v, err := view.New(def, p.kind)
			if err != nil {
				return err
			}
			inst = v
			p.instances[iv] = inst
			p.created++
		}
		inst.Apply(d)
	}
	p.expire()
	return nil
}

// expire drops instances whose interval ended more than expireAfter ago.
func (p *PeriodicView) expire() {
	if p.expireAfter < 0 {
		return
	}
	for iv := range p.instances {
		if iv.End+p.expireAfter <= p.maxSeen {
			delete(p.instances, iv)
			p.expired++
		}
	}
}

// At returns the live instance for an interval.
func (p *PeriodicView) At(iv Interval) (*view.View, bool) {
	v, ok := p.instances[iv]
	return v, ok
}

// ActiveAt returns the live instances whose interval contains ch, in
// ascending interval order.
func (p *PeriodicView) ActiveAt(ch int64) []*view.View {
	var out []*view.View
	for _, iv := range p.cal.IntervalsAt(ch) {
		if v, ok := p.instances[iv]; ok {
			out = append(out, v)
		}
	}
	return out
}

// Instances returns all live instances with their intervals, sorted by
// interval start (for reporting).
func (p *PeriodicView) Instances() []InstanceInfo {
	out := make([]InstanceInfo, 0, len(p.instances))
	for iv, v := range p.instances {
		out = append(out, InstanceInfo{Interval: iv, View: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interval.Start < out[j].Interval.Start })
	return out
}

// InstanceInfo pairs a live view instance with its interval.
type InstanceInfo struct {
	Interval Interval
	View     *view.View
}
