package pred

import (
	"testing"
	"testing/quick"

	"chronicledb/internal/value"
)

func tup(vals ...value.Value) value.Tuple { return value.Tuple(vals) }

func TestOpString(t *testing.T) {
	want := map[Op]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), s)
		}
	}
	if Op(42).String() != "op(42)" {
		t.Error("unknown op rendering")
	}
}

func TestOpNegate(t *testing.T) {
	pairs := map[Op]Op{Eq: Ne, Ne: Eq, Lt: Ge, Ge: Lt, Gt: Le, Le: Gt}
	for op, neg := range pairs {
		if op.Negate() != neg {
			t.Errorf("%v.Negate() = %v, want %v", op, op.Negate(), neg)
		}
	}
}

func TestOpNegateComplementQuick(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := value.Int(int64(a)), value.Int(int64(b))
		row := tup(x, y)
		for _, op := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
			atom := ColCol(0, op, 1)
			negated := ColCol(0, op.Negate(), 1)
			if atom.Eval(row) == negated.Eval(row) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomEvalColConst(t *testing.T) {
	row := tup(value.Int(10), value.Str("nj"))
	for _, tc := range []struct {
		atom Atom
		want bool
	}{
		{ColConst(0, Eq, value.Int(10)), true},
		{ColConst(0, Ne, value.Int(10)), false},
		{ColConst(0, Lt, value.Int(11)), true},
		{ColConst(0, Le, value.Int(10)), true},
		{ColConst(0, Gt, value.Int(10)), false},
		{ColConst(0, Ge, value.Int(10)), true},
		{ColConst(1, Eq, value.Str("nj")), true},
		{ColConst(1, Eq, value.Str("ny")), false},
		{ColConst(0, Eq, value.Float(10.0)), true}, // numeric cross-kind
	} {
		if got := tc.atom.Eval(row); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.atom.String(nil), got, tc.want)
		}
	}
}

func TestAtomEvalColCol(t *testing.T) {
	row := tup(value.Int(3), value.Int(7))
	if !ColCol(0, Lt, 1).Eval(row) {
		t.Error("3 < 7 should hold")
	}
	if ColCol(0, Ge, 1).Eval(row) {
		t.Error("3 >= 7 should not hold")
	}
}

func TestPredicateTrue(t *testing.T) {
	p := True()
	if !p.IsTrue() {
		t.Error("True().IsTrue() = false")
	}
	if !p.Eval(tup(value.Int(1))) {
		t.Error("True() should match everything")
	}
	if p.String(nil) != "true" {
		t.Errorf("String = %q", p.String(nil))
	}
	if Or().IsTrue() != true {
		t.Error("Or() should be True")
	}
}

func TestPredicateDisjunction(t *testing.T) {
	// minutes > 100 OR state = "nj"
	p := Or(
		ColConst(0, Gt, value.Int(100)),
		ColConst(1, Eq, value.Str("nj")),
	)
	if p.IsTrue() {
		t.Error("non-empty predicate reported true")
	}
	if !p.Eval(tup(value.Int(101), value.Str("ny"))) {
		t.Error("first disjunct should match")
	}
	if !p.Eval(tup(value.Int(5), value.Str("nj"))) {
		t.Error("second disjunct should match")
	}
	if p.Eval(tup(value.Int(5), value.Str("ny"))) {
		t.Error("neither disjunct should match")
	}
}

func TestPredicateColumnsAndMax(t *testing.T) {
	p := Or(ColCol(3, Lt, 1), ColConst(5, Eq, value.Int(0)))
	cols := p.Columns()
	if len(cols) != 3 || cols[0] != 1 || cols[1] != 3 || cols[2] != 5 {
		t.Errorf("Columns = %v", cols)
	}
	if p.MaxColumn() != 5 {
		t.Errorf("MaxColumn = %d", p.MaxColumn())
	}
	if True().MaxColumn() != -1 {
		t.Error("True().MaxColumn() != -1")
	}
}

func TestEqualityConstant(t *testing.T) {
	if col, k, ok := Or(ColConst(2, Eq, value.Str("a"))).EqualityConstant(); !ok || col != 2 || k.AsString() != "a" {
		t.Errorf("EqualityConstant = %d, %v, %v", col, k, ok)
	}
	if _, _, ok := Or(ColConst(2, Lt, value.Int(1))).EqualityConstant(); ok {
		t.Error("inequality should not be an equality constant")
	}
	if _, _, ok := Or(ColCol(0, Eq, 1)).EqualityConstant(); ok {
		t.Error("col-col equality should not qualify")
	}
	if _, _, ok := Or(ColConst(0, Eq, value.Int(1)), ColConst(1, Eq, value.Int(2))).EqualityConstant(); ok {
		t.Error("multi-atom disjunction should not qualify")
	}
	if _, _, ok := True().EqualityConstant(); ok {
		t.Error("True should not qualify")
	}
}

func TestRemap(t *testing.T) {
	p := Or(ColCol(0, Lt, 1), ColConst(2, Eq, value.Int(9)))
	m := p.Remap(func(i int) int { return i + 10 })
	atoms := m.Atoms()
	if atoms[0].Left != 10 || atoms[0].Right.Col != 11 || atoms[1].Left != 12 {
		t.Errorf("Remap atoms = %+v", atoms)
	}
	// Original must be untouched.
	if p.Atoms()[0].Left != 0 {
		t.Error("Remap mutated original")
	}
}

func TestPredicateString(t *testing.T) {
	schema := value.NewSchema(
		value.Column{Name: "minutes", Kind: value.KindInt},
		value.Column{Name: "state", Kind: value.KindString},
	)
	p := Or(ColConst(0, Gt, value.Int(100)), ColConst(1, Eq, value.Str("nj")))
	got := p.String(schema)
	if got != `minutes > 100 OR state = "nj"` {
		t.Errorf("String = %q", got)
	}
	if ColCol(0, Le, 1).String(nil) != "$0 <= $1" {
		t.Errorf("schemaless atom = %q", ColCol(0, Le, 1).String(nil))
	}
}

func TestDisjunctionEquivalentToAnyQuick(t *testing.T) {
	f := func(v int16, bounds []int16) bool {
		if len(bounds) > 8 {
			bounds = bounds[:8]
		}
		atoms := make([]Atom, len(bounds))
		for i, b := range bounds {
			atoms[i] = ColConst(0, Gt, value.Int(int64(b)))
		}
		p := Or(atoms...)
		row := tup(value.Int(int64(v)))
		want := len(bounds) == 0 // empty = true
		for _, b := range bounds {
			if int64(v) > int64(b) {
				want = true
			}
		}
		return p.Eval(row) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
