// Package pred implements the selection-predicate language of Definition
// 4.1 of the chronicle paper: a predicate is an atom of the form A θ A′ or
// A θ k — where A, A′ are attributes, k is a constant, and θ ∈
// {=, ≠, ≤, <, >, ≥} — or a disjunction of such atoms.
//
// Conjunction is deliberately absent from a single predicate, exactly as in
// the paper; the planner expresses AND by stacking selections
// (σ_p1(σ_p2(C))), which stays inside the chronicle algebra.
package pred

import (
	"fmt"
	"strings"

	"chronicledb/internal/value"
)

// Op is a comparison operator.
type Op uint8

// The six comparison operators of Definition 4.1.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// eval applies the operator to a three-way comparison result.
func (o Op) eval(cmp int) bool {
	switch o {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	default:
		return false
	}
}

// Negate returns the operator whose truth value is the complement.
func (o Op) Negate() Op {
	switch o {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	default:
		return o
	}
}

// Operand is the right-hand side of an atom: either another column or a
// constant.
type Operand struct {
	IsCol bool
	Col   int         // column index, when IsCol
	Const value.Value // constant, otherwise
}

// ColOperand returns an operand referring to the column at index col.
func ColOperand(col int) Operand { return Operand{IsCol: true, Col: col} }

// ConstOperand returns a constant operand.
func ConstOperand(v value.Value) Operand { return Operand{Const: v} }

// Atom is a single comparison: column θ operand.
type Atom struct {
	Left  int // column index of the left-hand attribute
	Op    Op
	Right Operand
}

// ColConst builds the atom "col θ k".
func ColConst(col int, op Op, k value.Value) Atom {
	return Atom{Left: col, Op: op, Right: ConstOperand(k)}
}

// ColCol builds the atom "a θ b" over two columns.
func ColCol(a int, op Op, b int) Atom {
	return Atom{Left: a, Op: op, Right: ColOperand(b)}
}

// Eval evaluates the atom against a tuple. Comparisons involving null are
// false (SQL-style), except that "= null"/"!= null" treat null as a plain
// sortable value so selections stay total.
func (a Atom) Eval(t value.Tuple) bool {
	left := t[a.Left]
	var right value.Value
	if a.Right.IsCol {
		right = t[a.Right.Col]
	} else {
		right = a.Right.Const
	}
	return a.Op.eval(value.Compare(left, right))
}

// String renders the atom against an optional schema for column names.
func (a Atom) String(schema *value.Schema) string {
	name := func(i int) string {
		if schema != nil && i < schema.Len() {
			return schema.Col(i).Name
		}
		return fmt.Sprintf("$%d", i)
	}
	rhs := ""
	if a.Right.IsCol {
		rhs = name(a.Right.Col)
	} else if a.Right.Const.Kind() == value.KindString {
		rhs = fmt.Sprintf("%q", a.Right.Const.AsString())
	} else {
		rhs = a.Right.Const.String()
	}
	return fmt.Sprintf("%s %s %s", name(a.Left), a.Op, rhs)
}

// Predicate is a disjunction of atoms. The zero value (no atoms) is the
// always-true predicate, so that σ_true is the identity selection.
type Predicate struct {
	atoms []Atom
}

// True returns the always-true predicate.
func True() Predicate { return Predicate{} }

// Or builds a predicate that is the disjunction of the given atoms.
// Or() with no atoms is True.
func Or(atoms ...Atom) Predicate {
	return Predicate{atoms: append([]Atom(nil), atoms...)}
}

// IsTrue reports whether the predicate is the always-true predicate.
func (p Predicate) IsTrue() bool { return len(p.atoms) == 0 }

// Atoms returns the predicate's atoms. Callers must not modify the result.
func (p Predicate) Atoms() []Atom { return p.atoms }

// Eval evaluates the disjunction against a tuple.
func (p Predicate) Eval(t value.Tuple) bool {
	if len(p.atoms) == 0 {
		return true
	}
	for _, a := range p.atoms {
		if a.Eval(t) {
			return true
		}
	}
	return false
}

// MaxColumn returns the largest column index referenced, or -1 if none.
// The algebra uses it to validate predicates against operand schemas.
func (p Predicate) MaxColumn() int {
	max := -1
	for _, a := range p.atoms {
		if a.Left > max {
			max = a.Left
		}
		if a.Right.IsCol && a.Right.Col > max {
			max = a.Right.Col
		}
	}
	return max
}

// Columns returns the set of referenced column indexes in ascending order.
func (p Predicate) Columns() []int {
	seen := map[int]bool{}
	for _, a := range p.atoms {
		seen[a.Left] = true
		if a.Right.IsCol {
			seen[a.Right.Col] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EqualityConstant reports whether the predicate is the single atom
// "col = k" and, if so, returns the column and constant. The dispatch
// index (Section 5.2) fast-paths such predicates.
func (p Predicate) EqualityConstant() (col int, k value.Value, ok bool) {
	if len(p.atoms) != 1 {
		return 0, value.Null(), false
	}
	a := p.atoms[0]
	if a.Op != Eq || a.Right.IsCol {
		return 0, value.Null(), false
	}
	return a.Left, a.Right.Const, true
}

// Remap returns a copy of the predicate with every column index translated
// through f. The algebra uses it when predicates are pushed through
// projections.
func (p Predicate) Remap(f func(int) int) Predicate {
	atoms := make([]Atom, len(p.atoms))
	for i, a := range p.atoms {
		a.Left = f(a.Left)
		if a.Right.IsCol {
			a.Right.Col = f(a.Right.Col)
		}
		atoms[i] = a
	}
	return Predicate{atoms: atoms}
}

// String renders the predicate as "a OR b OR ...".
func (p Predicate) String(schema *value.Schema) string {
	if p.IsTrue() {
		return "true"
	}
	parts := make([]string, len(p.atoms))
	for i, a := range p.atoms {
		parts[i] = a.String(schema)
	}
	return strings.Join(parts, " OR ")
}
