// Package relation implements the relation half of a chronicle database.
//
// "Each relation conceptually has multiple temporal versions, one after
// every update" (Section 2.3). Joins between chronicles and relations are
// implicit temporal joins: each chronicle tuple joins with the relation
// version at that tuple's temporal instant. Because the chronicle model
// admits only *proactive* updates, incremental view maintenance only ever
// needs the current version; this package nevertheless keeps a per-key
// version history indexed by the database LSN so the reference evaluator
// and the test suite can verify temporal-join semantics end to end.
package relation

import (
	"fmt"
	"sync"

	"chronicledb/internal/btree"
	"chronicledb/internal/value"
)

// version is one historical state of a key: the tuple that became current
// at fromLSN. A nil Vals records a deletion.
type version struct {
	fromLSN uint64
	vals    value.Tuple
}

// entry is the full history of one key.
type entry struct {
	versions []version // ascending fromLSN; last is current
}

func (e *entry) current() (value.Tuple, bool) {
	if len(e.versions) == 0 {
		return nil, false
	}
	v := e.versions[len(e.versions)-1]
	return v.vals, v.vals != nil
}

func (e *entry) asOf(lsn uint64) (value.Tuple, bool) {
	// Binary search for the last version with fromLSN <= lsn.
	lo, hi := 0, len(e.versions)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.versions[mid].fromLSN <= lsn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, false
	}
	v := e.versions[lo-1]
	return v.vals, v.vals != nil
}

// Relation is a keyed, versioned relation. Updates are serialized by the
// engine; mu additionally lets read methods (Get, Scan, LookupBy, AsOf
// variants) run concurrently with updates without the engine-wide lock.
type Relation struct {
	name    string
	schema  *value.Schema
	keyCols []int

	// mu guards entries, live, and updates: version slices are appended in
	// place, so readers cannot traverse them while an upsert runs.
	mu      sync.RWMutex
	entries *btree.Tree[string, *entry]
	live    int  // number of keys with a live current version
	history bool // retain superseded versions for AsOf lookups
	updates int64
}

// New creates a relation with the given key columns. When history is true,
// superseded versions are retained for AsOf lookups; production engines
// run with history=false, matching the paper's observation that "versions
// of relations do not need to be stored".
func New(name string, schema *value.Schema, keyCols []int, history bool) (*Relation, error) {
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("relation %s: schema must have at least one column", name)
	}
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("relation %s: at least one key column required", name)
	}
	seen := map[int]bool{}
	for _, k := range keyCols {
		if k < 0 || k >= schema.Len() {
			return nil, fmt.Errorf("relation %s: key column %d out of range", name, k)
		}
		if seen[k] {
			return nil, fmt.Errorf("relation %s: duplicate key column %d", name, k)
		}
		seen[k] = true
	}
	return &Relation{
		name:    name,
		schema:  schema,
		keyCols: append([]int(nil), keyCols...),
		entries: btree.New[string, *entry](func(a, b string) bool { return a < b }),
		history: history,
	}, nil
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *value.Schema { return r.schema }

// KeyCols returns the key column indexes.
func (r *Relation) KeyCols() []int { return append([]int(nil), r.keyCols...) }

// Len returns the number of live keys.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live
}

// Updates returns the number of upserts and deletes ever applied.
func (r *Relation) Updates() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.updates
}

// Reset discards every entry (and all retained history). Recovery uses it
// when a checkpoint chain restores the same relation more than once: each
// chain entry's snapshot must replace, not merge with, the previous one.
func (r *Relation) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = btree.New[string, *entry](func(a, b string) bool { return a < b })
	r.live = 0
}

// keyOf extracts the key string of a full tuple.
func (r *Relation) keyOf(t value.Tuple) string { return t.Key(r.keyCols) }

// KeyString renders a key-values slice (in keyCols order) into the internal
// key representation.
func (r *Relation) KeyString(keyVals value.Tuple) string {
	all := make([]int, len(keyVals))
	for i := range all {
		all[i] = i
	}
	return keyVals.Key(all)
}

// Upsert inserts or replaces the tuple for its key, becoming current at
// lsn. LSNs must be non-decreasing across calls; the engine guarantees this.
func (r *Relation) Upsert(lsn uint64, t value.Tuple) error {
	if err := r.schema.Validate(t); err != nil {
		return fmt.Errorf("relation %s: %w", r.name, err)
	}
	for _, k := range r.keyCols {
		if t[k].IsNull() {
			return fmt.Errorf("relation %s: null key column %q", r.name, r.schema.Col(k).Name)
		}
	}
	key := r.keyOf(t)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries.Get(key)
	if !ok {
		e = &entry{}
		r.entries.Set(key, e)
	}
	_, wasLive := e.current()
	r.push(e, version{fromLSN: lsn, vals: t.Clone()})
	if !wasLive {
		r.live++
	}
	r.updates++
	return nil
}

// Delete removes the tuple with the given key values (in keyCols order),
// effective at lsn. Deleting an absent key is a no-op that reports false.
func (r *Relation) Delete(lsn uint64, keyVals value.Tuple) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries.Get(r.KeyString(keyVals))
	if !ok {
		return false
	}
	if _, live := e.current(); !live {
		return false
	}
	r.push(e, version{fromLSN: lsn, vals: nil})
	r.live--
	r.updates++
	return true
}

// push appends a version, collapsing history when disabled or when two
// updates share one LSN (the later one wins within a single engine step).
func (r *Relation) push(e *entry, v version) {
	if n := len(e.versions); n > 0 && e.versions[n-1].fromLSN == v.fromLSN {
		e.versions[n-1] = v
		return
	}
	if !r.history && len(e.versions) > 0 {
		e.versions[len(e.versions)-1] = v
		return
	}
	e.versions = append(e.versions, v)
}

// Get returns the current tuple for the given key values.
func (r *Relation) Get(keyVals value.Tuple) (value.Tuple, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.getLocked(keyVals)
}

// getLocked is Get without locking; the caller holds mu.
func (r *Relation) getLocked(keyVals value.Tuple) (value.Tuple, bool) {
	e, ok := r.entries.Get(r.KeyString(keyVals))
	if !ok {
		return nil, false
	}
	return e.current()
}

// GetAsOf returns the tuple for the key as of the given LSN. It requires
// the relation to have been created with history enabled; without history
// it degrades to the current version (documented, for baselines only).
func (r *Relation) GetAsOf(lsn uint64, keyVals value.Tuple) (value.Tuple, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries.Get(r.KeyString(keyVals))
	if !ok {
		return nil, false
	}
	if !r.history {
		return e.current()
	}
	return e.asOf(lsn)
}

// Scan visits every live tuple in key order until fn returns false. fn
// runs under the relation read lock and must not call update methods.
func (r *Relation) Scan(fn func(value.Tuple) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.scanLocked(fn)
}

// scanLocked is Scan without locking; the caller holds mu.
func (r *Relation) scanLocked(fn func(value.Tuple) bool) {
	r.entries.Ascend(func(_ string, e *entry) bool {
		if t, ok := e.current(); ok {
			return fn(t)
		}
		return true
	})
}

// ScanAsOf visits every tuple live as of lsn in key order.
func (r *Relation) ScanAsOf(lsn uint64, fn func(value.Tuple) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.entries.Ascend(func(_ string, e *entry) bool {
		var t value.Tuple
		var ok bool
		if r.history {
			t, ok = e.asOf(lsn)
		} else {
			t, ok = e.current()
		}
		if ok {
			return fn(t)
		}
		return true
	})
}

// LookupBy returns all current tuples whose values at cols equal vals.
// When cols covers the key, this is the O(log|R|) key lookup that CA⋈
// requires; otherwise it degrades to a scan (used only by plain CA cross
// products, which are outside IM-log(R) anyway — Theorem 4.3).
func (r *Relation) LookupBy(cols []int, vals value.Tuple) []value.Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.colsAreKey(cols) {
		// Reorder vals into keyCols order.
		ordered := make(value.Tuple, len(r.keyCols))
		for i, kc := range r.keyCols {
			for j, c := range cols {
				if c == kc {
					ordered[i] = vals[j]
				}
			}
		}
		if t, ok := r.getLocked(ordered); ok {
			return []value.Tuple{t}
		}
		return nil
	}
	var out []value.Tuple
	r.scanLocked(func(t value.Tuple) bool {
		for i, c := range cols {
			if !value.Equal(t[c], vals[i]) {
				return true
			}
		}
		out = append(out, t)
		return true
	})
	return out
}

// colsAreKey reports whether cols is exactly the key column set.
func (r *Relation) colsAreKey(cols []int) bool {
	if len(cols) != len(r.keyCols) {
		return false
	}
	for _, kc := range r.keyCols {
		found := false
		for _, c := range cols {
			if c == kc {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// IsKey reports whether the given columns form the relation's key — the
// paper's "sufficient condition for the guarantee" that at most a constant
// number of relation tuples join with each chronicle tuple (Definition 4.2).
func (r *Relation) IsKey(cols []int) bool { return r.colsAreKey(cols) }
