package relation

import (
	"testing"
	"testing/quick"

	"chronicledb/internal/value"
)

func custSchema() *value.Schema {
	return value.NewSchema(
		value.Column{Name: "acct", Kind: value.KindString},
		value.Column{Name: "name", Kind: value.KindString},
		value.Column{Name: "state", Kind: value.KindString},
	)
}

func cust(acct, name, state string) value.Tuple {
	return value.Tuple{value.Str(acct), value.Str(name), value.Str(state)}
}

func newCust(t *testing.T, history bool) *Relation {
	t.Helper()
	r, err := New("customers", custSchema(), []int{0}, history)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New("r", nil, []int{0}, false); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := New("r", custSchema(), nil, false); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := New("r", custSchema(), []int{7}, false); err == nil {
		t.Error("out-of-range key accepted")
	}
	if _, err := New("r", custSchema(), []int{0, 0}, false); err == nil {
		t.Error("duplicate key column accepted")
	}
	r, err := New("r", custSchema(), []int{0, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.KeyCols(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("KeyCols = %v", got)
	}
}

func TestUpsertGetDelete(t *testing.T) {
	r := newCust(t, false)
	if err := r.Upsert(1, cust("a1", "alice", "nj")); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	got, ok := r.Get(value.Tuple{value.Str("a1")})
	if !ok || got[1].AsString() != "alice" {
		t.Errorf("Get = %v, %v", got, ok)
	}
	// Replace.
	if err := r.Upsert(2, cust("a1", "alice", "ny")); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Get(value.Tuple{value.Str("a1")})
	if got[2].AsString() != "ny" {
		t.Errorf("after replace: %v", got)
	}
	if r.Len() != 1 {
		t.Errorf("Len after replace = %d", r.Len())
	}
	// Delete.
	if !r.Delete(3, value.Tuple{value.Str("a1")}) {
		t.Error("Delete reported false")
	}
	if r.Len() != 0 {
		t.Errorf("Len after delete = %d", r.Len())
	}
	if _, ok := r.Get(value.Tuple{value.Str("a1")}); ok {
		t.Error("Get after delete succeeded")
	}
	if r.Delete(4, value.Tuple{value.Str("a1")}) {
		t.Error("double delete reported true")
	}
	if r.Delete(4, value.Tuple{value.Str("zz")}) {
		t.Error("deleting absent key reported true")
	}
	if r.Updates() != 3 {
		t.Errorf("Updates = %d, want 3", r.Updates())
	}
}

func TestUpsertValidation(t *testing.T) {
	r := newCust(t, false)
	if err := r.Upsert(1, value.Tuple{value.Str("a")}); err == nil {
		t.Error("arity violation accepted")
	}
	if err := r.Upsert(1, value.Tuple{value.Null(), value.Str("x"), value.Str("y")}); err == nil {
		t.Error("null key accepted")
	}
}

func TestHistoryAsOf(t *testing.T) {
	r := newCust(t, true)
	r.Upsert(10, cust("a1", "alice", "nj"))
	r.Upsert(20, cust("a1", "alice", "ny"))
	r.Delete(30, value.Tuple{value.Str("a1")})
	r.Upsert(40, cust("a1", "alice", "ca"))

	for _, tc := range []struct {
		lsn   uint64
		state string
		live  bool
	}{
		{5, "", false},
		{10, "nj", true},
		{15, "nj", true},
		{20, "ny", true},
		{29, "ny", true},
		{30, "", false},
		{39, "", false},
		{40, "ca", true},
		{100, "ca", true},
	} {
		got, ok := r.GetAsOf(tc.lsn, value.Tuple{value.Str("a1")})
		if ok != tc.live {
			t.Errorf("AsOf(%d) live = %v, want %v", tc.lsn, ok, tc.live)
			continue
		}
		if ok && got[2].AsString() != tc.state {
			t.Errorf("AsOf(%d) state = %s, want %s", tc.lsn, got[2].AsString(), tc.state)
		}
	}
}

func TestNoHistoryCollapses(t *testing.T) {
	r := newCust(t, false)
	r.Upsert(10, cust("a1", "alice", "nj"))
	r.Upsert(20, cust("a1", "alice", "ny"))
	// Without history, AsOf degrades to current.
	got, ok := r.GetAsOf(10, value.Tuple{value.Str("a1")})
	if !ok || got[2].AsString() != "ny" {
		t.Errorf("no-history AsOf = %v, %v", got, ok)
	}
}

func TestSameLSNLastWins(t *testing.T) {
	r := newCust(t, true)
	r.Upsert(10, cust("a1", "alice", "nj"))
	r.Upsert(10, cust("a1", "alice", "ny"))
	got, _ := r.Get(value.Tuple{value.Str("a1")})
	if got[2].AsString() != "ny" {
		t.Errorf("same-LSN update: %v", got)
	}
	if got, ok := r.GetAsOf(10, value.Tuple{value.Str("a1")}); !ok || got[2].AsString() != "ny" {
		t.Errorf("same-LSN AsOf: %v, %v", got, ok)
	}
}

func TestScan(t *testing.T) {
	r := newCust(t, false)
	r.Upsert(1, cust("c", "carol", "nj"))
	r.Upsert(2, cust("a", "alice", "ny"))
	r.Upsert(3, cust("b", "bob", "ca"))
	r.Delete(4, value.Tuple{value.Str("b")})
	var accts []string
	r.Scan(func(t value.Tuple) bool {
		accts = append(accts, t[0].AsString())
		return true
	})
	if len(accts) != 2 || accts[0] != "a" || accts[1] != "c" {
		t.Errorf("Scan = %v (want key order, deleted excluded)", accts)
	}
	// Early stop.
	count := 0
	r.Scan(func(value.Tuple) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanAsOf(t *testing.T) {
	r := newCust(t, true)
	r.Upsert(1, cust("a", "alice", "ny"))
	r.Upsert(2, cust("b", "bob", "ca"))
	r.Delete(3, value.Tuple{value.Str("a")})
	var at2, at3 []string
	r.ScanAsOf(2, func(t value.Tuple) bool { at2 = append(at2, t[0].AsString()); return true })
	r.ScanAsOf(3, func(t value.Tuple) bool { at3 = append(at3, t[0].AsString()); return true })
	if len(at2) != 2 {
		t.Errorf("ScanAsOf(2) = %v", at2)
	}
	if len(at3) != 1 || at3[0] != "b" {
		t.Errorf("ScanAsOf(3) = %v", at3)
	}
}

func TestLookupByKey(t *testing.T) {
	r := newCust(t, false)
	r.Upsert(1, cust("a", "alice", "ny"))
	r.Upsert(2, cust("b", "bob", "ca"))
	got := r.LookupBy([]int{0}, value.Tuple{value.Str("b")})
	if len(got) != 1 || got[0][1].AsString() != "bob" {
		t.Errorf("LookupBy key = %v", got)
	}
	if got := r.LookupBy([]int{0}, value.Tuple{value.Str("zz")}); got != nil {
		t.Errorf("LookupBy absent = %v", got)
	}
}

func TestLookupByNonKey(t *testing.T) {
	r := newCust(t, false)
	r.Upsert(1, cust("a", "alice", "ny"))
	r.Upsert(2, cust("b", "bob", "ny"))
	r.Upsert(3, cust("c", "carol", "ca"))
	got := r.LookupBy([]int{2}, value.Tuple{value.Str("ny")})
	if len(got) != 2 {
		t.Errorf("LookupBy non-key = %v", got)
	}
}

func TestIsKey(t *testing.T) {
	r, _ := New("r", custSchema(), []int{0, 1}, false)
	if !r.IsKey([]int{0, 1}) || !r.IsKey([]int{1, 0}) {
		t.Error("key set (any order) should be recognized")
	}
	if r.IsKey([]int{0}) || r.IsKey([]int{0, 2}) || r.IsKey([]int{0, 1, 2}) {
		t.Error("non-key sets misrecognized")
	}
}

func TestCompositeKey(t *testing.T) {
	r, _ := New("r", custSchema(), []int{0, 2}, false)
	r.Upsert(1, cust("a", "alice", "ny"))
	r.Upsert(2, cust("a", "alice2", "ca")) // same acct, different state: distinct key
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	got, ok := r.Get(value.Tuple{value.Str("a"), value.Str("ca")})
	if !ok || got[1].AsString() != "alice2" {
		t.Errorf("composite Get = %v, %v", got, ok)
	}
}

// TestAsOfMatchesReplay checks, for random update streams, that GetAsOf at
// every LSN agrees with replaying the stream up to that LSN.
func TestAsOfMatchesReplay(t *testing.T) {
	type update struct {
		Key  uint8
		Del  bool
		Name uint16
	}
	f := func(updates []update) bool {
		r := newCustQuick(true)
		// Replay state: key -> name (live only).
		type state map[uint8]uint16
		snapshots := []state{}
		cur := state{}
		for i, u := range updates {
			lsn := uint64(i + 1)
			key := value.Tuple{value.Str(string(rune('a' + u.Key%4)))}
			if u.Del {
				r.Delete(lsn, key)
				delete(cur, u.Key%4)
			} else {
				name := value.Str(string(rune('A' + u.Name%26)))
				r.Upsert(lsn, value.Tuple{key[0], name, value.Str("x")})
				cur[u.Key%4] = u.Name % 26
			}
			snap := state{}
			for k, v := range cur {
				snap[k] = v
			}
			snapshots = append(snapshots, snap)
		}
		for i, snap := range snapshots {
			lsn := uint64(i + 1)
			for k := uint8(0); k < 4; k++ {
				key := value.Tuple{value.Str(string(rune('a' + k)))}
				got, ok := r.GetAsOf(lsn, key)
				want, live := snap[k]
				if ok != live {
					return false
				}
				if ok && got[1].AsString() != string(rune('A'+want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func newCustQuick(history bool) *Relation {
	r, err := New("customers", custSchema(), []int{0}, history)
	if err != nil {
		panic(err)
	}
	return r
}
