//go:build !race

package chronicledb_test

// raceEnabled reports whether the race detector is on. The AllocsPerRun
// guards are skipped under -race: instrumentation adds allocations the
// production build does not have.
const raceEnabled = false
