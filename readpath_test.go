// Read-path tests: snapshot consistency under concurrent writers (run
// these under -race), the "latest N groups" query fast paths, the
// caller-owned result contract, and the read-side allocation guards that
// `make bench-reads` (wired into `make check`) enforces.
package chronicledb_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	chronicledb "chronicledb"
	"chronicledb/internal/fault"
)

// readStressDB opens an in-memory DB with one chronicle and one B-tree
// summary view (acct → SUM(minutes), COUNT(*)).
func readStressDB(t testing.TB, opts chronicledb.Options) *chronicledb.DB {
	t.Helper()
	db, err := chronicledb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, stmt := range []string{
		`CREATE CHRONICLE calls (acct STRING, minutes INT)`,
		`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total, COUNT(*) AS n
		 FROM calls GROUP BY acct WITH STORE BTREE`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// checkUsageRow asserts the all-or-nothing invariant on one usage row:
// every appended tuple carries minutes=7, so total must be exactly 7·n in
// any committed state; a torn read (entry cloned mid-update, or a
// half-applied batch visible) breaks the equality. batchK > 1 additionally
// requires n to be a whole number of batches for that account.
func checkUsageRow(t testing.TB, row chronicledb.Row, batchK int64) {
	t.Helper()
	total, n := row[1].AsInt(), row[2].AsInt()
	if total != 7*n {
		t.Errorf("torn read: acct %s has total=%d n=%d (want total=7n)", row[0].AsString(), total, n)
	}
	if batchK > 1 && n%batchK != 0 {
		t.Errorf("partial batch visible: acct %s has n=%d, not a multiple of %d", row[0].AsString(), n, batchK)
	}
}

// TestSnapshotReaderWriterStress drives batch and per-tuple writers against
// concurrent lock-free readers and asserts every read observes an
// all-or-nothing state per committed transaction. Run under -race this is
// the tentpole's correctness gate: lookups, ascending/descending scans, and
// range scans all run off published snapshots while ApplyRows mutates the
// live tree.
func TestSnapshotReaderWriterStress(t *testing.T) {
	const (
		batches = 300
		batchK  = 5
		eachOps = 300
	)
	db := readStressDB(t, chronicledb.Options{})

	var done atomic.Bool
	var writers, wg sync.WaitGroup

	// Batch writer: each Append is one transaction of batchK tuples for
	// the same account, so n ("batch") must only ever grow in steps of K.
	writers.Add(1)
	go func() {
		defer writers.Done()
		tuples := make([]chronicledb.Tuple, batchK)
		for i := range tuples {
			tuples[i] = chronicledb.Tuple{chronicledb.Str("batch"), chronicledb.Int(7)}
		}
		for i := 0; i < batches; i++ {
			if _, err := db.Append("calls", tuples...); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Per-tuple writer: AppendRows gives every tuple its own transaction
	// across a rotating set of accounts; rows must still be internally
	// consistent (total = 7n).
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < eachOps; i++ {
			acct := fmt.Sprintf("each%d", i%8)
			tuples := []chronicledb.Tuple{
				{chronicledb.Str(acct), chronicledb.Int(7)},
				{chronicledb.Str(acct), chronicledb.Int(7)},
			}
			if _, _, err := db.AppendRows("calls", tuples); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	reader := func(seed int) {
		defer wg.Done()
		// At least one full rotation through the four read shapes, even if
		// the writers outrun the scheduler (single-core hosts under -race).
		for i := 0; i < 4 || !done.Load(); i++ {
			switch (i + seed) % 4 {
			case 0:
				if row, ok, err := db.Lookup("usage", chronicledb.Str("batch")); err != nil {
					t.Error(err)
					return
				} else if ok {
					checkUsageRow(t, row, batchK)
				}
			case 1:
				if err := db.ScanView("usage", func(row chronicledb.Row) bool {
					if row[0].AsString() == "batch" {
						checkUsageRow(t, row, batchK)
					} else {
						checkUsageRow(t, row, 1)
					}
					return true
				}); err != nil {
					t.Error(err)
					return
				}
			case 2:
				rows, err := db.LookupRange("usage",
					chronicledb.Tuple{chronicledb.Str("each")},
					chronicledb.Tuple{chronicledb.Str("each~")})
				if err != nil {
					t.Error(err)
					return
				}
				for _, row := range rows {
					checkUsageRow(t, row, 1)
				}
			case 3:
				rows, err := db.LatestViewRows("usage", 3)
				if err != nil {
					t.Error(err)
					return
				}
				for _, row := range rows {
					k := int64(1)
					if row[0].AsString() == "batch" {
						k = batchK
					}
					checkUsageRow(t, row, k)
				}
			}
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go reader(i)
	}

	writers.Wait()
	done.Store(true)
	wg.Wait()

	// Final state: every committed transaction is visible exactly once.
	row, ok, err := db.Lookup("usage", chronicledb.Str("batch"))
	if err != nil || !ok {
		t.Fatalf("final lookup: %v %v", ok, err)
	}
	if got := row[2].AsInt(); got != batches*batchK {
		t.Errorf("final n = %d, want %d", got, batches*batchK)
	}
	checkUsageRow(t, row, batchK)
	if rs := db.ReadStats(); rs.Lookups == 0 || rs.Scans == 0 {
		t.Errorf("ReadStats = %+v, want nonzero lookups and scans", rs)
	}
	if db.SnapshotAge() <= 0 {
		t.Error("SnapshotAge() = 0 with a live B-tree view")
	}
}

// TestSnapshotReadsAcrossPowerCut runs the reader/writer stress on a
// durable database, power-cuts the simulated disk mid-workload, reopens,
// and asserts the recovered view serves consistent snapshots again — the
// all-or-nothing invariant must hold before the cut, after recovery, and
// during the post-recovery workload.
func TestSnapshotReadsAcrossPowerCut(t *testing.T) {
	const batchK = 4
	disk := fault.NewDisk()
	db := readStressDB(t, chronicledb.Options{Dir: "/data", SyncWAL: true, FS: disk})

	tuples := make([]chronicledb.Tuple, batchK)
	for i := range tuples {
		tuples[i] = chronicledb.Tuple{chronicledb.Str("batch"), chronicledb.Int(7)}
	}
	var acked atomic.Int64
	var done atomic.Bool
	var writer, reader sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < 150; i++ {
			if _, err := db.Append("calls", tuples...); err != nil {
				t.Error(err)
				return
			}
			acked.Add(1)
		}
	}()
	reader.Add(1)
	go func() {
		defer reader.Done()
		for !done.Load() {
			if row, ok, err := db.Lookup("usage", chronicledb.Str("batch")); err != nil {
				t.Error(err)
				return
			} else if ok {
				checkUsageRow(t, row, batchK)
			}
		}
	}()
	writer.Wait() // writer done; stop the reader
	done.Store(true)
	reader.Wait()

	// Power cut: everything acked was group-committed, so recovery must
	// rebuild exactly acked.Load() batches.
	db.Close()
	disk.PowerCut()
	disk.Heal()
	db2, err := chronicledb.Open(chronicledb.Options{Dir: "/data", SyncWAL: true, FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	row, ok, err := db2.Lookup("usage", chronicledb.Str("batch"))
	if err != nil || !ok {
		t.Fatalf("post-recovery lookup: %v %v", ok, err)
	}
	checkUsageRow(t, row, batchK)
	if got, want := row[2].AsInt(), acked.Load()*batchK; got != want {
		t.Errorf("post-recovery n = %d, want %d", got, want)
	}

	// The recovered view publishes snapshots: reads stay consistent under
	// a fresh concurrent writer.
	var writer2, reader2 sync.WaitGroup
	var done2 atomic.Bool
	writer2.Add(1)
	go func() {
		defer writer2.Done()
		for i := 0; i < 50; i++ {
			if _, err := db2.Append("calls", tuples...); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	reader2.Add(1)
	go func() {
		defer reader2.Done()
		for !done2.Load() {
			if row, ok, err := db2.Lookup("usage", chronicledb.Str("batch")); err != nil {
				t.Error(err)
				return
			} else if ok {
				checkUsageRow(t, row, batchK)
			}
		}
	}()
	writer2.Wait()
	done2.Store(true)
	reader2.Wait()
}

// TestOrderedQueryFastPaths checks the streaming SELECT shapes: natural
// ascending order, ORDER BY the leading key column in both directions with
// LIMIT early-stop, and the materialize-and-sort fallback for non-key
// ORDER BY — on both store kinds (the hash store exercises the descending
// fallback).
func TestOrderedQueryFastPaths(t *testing.T) {
	for _, store := range []string{"BTREE", "HASH"} {
		t.Run(store, func(t *testing.T) {
			db, err := chronicledb.Open(chronicledb.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			mustOK := func(stmt string) *chronicledb.Result {
				t.Helper()
				res, err := db.Exec(stmt)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			mustOK(`CREATE CHRONICLE calls (acct STRING, minutes INT)`)
			mustOK(`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total
			        FROM calls GROUP BY acct WITH STORE ` + store)
			for i, acct := range []string{"carol", "alice", "eve", "bob", "dave"} {
				mustOK(fmt.Sprintf(`APPEND INTO calls VALUES ('%s', %d)`, acct, (i+1)*10))
			}

			wantCol0 := func(res *chronicledb.Result, want ...string) {
				t.Helper()
				if len(res.Rows) != len(want) {
					t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
				}
				for i, w := range want {
					if got := res.Rows[i][0].AsString(); got != w {
						t.Errorf("row %d = %q, want %q", i, got, w)
					}
				}
			}
			// Natural order (no ORDER BY): ascending group key.
			wantCol0(mustOK(`SELECT * FROM usage`), "alice", "bob", "carol", "dave", "eve")
			// Leading-key ascending with LIMIT: stream + early stop.
			wantCol0(mustOK(`SELECT * FROM usage ORDER BY acct LIMIT 2`), "alice", "bob")
			// Leading-key descending with LIMIT: the "latest N groups" path.
			wantCol0(mustOK(`SELECT * FROM usage ORDER BY acct DESC LIMIT 2`), "eve", "dave")
			// Descending with WHERE: filter composes with the walk.
			wantCol0(mustOK(`SELECT * FROM usage WHERE acct < 'dave' ORDER BY acct DESC LIMIT 2`),
				"carol", "bob")
			// Non-key ORDER BY: materialize-and-sort fallback.
			wantCol0(mustOK(`SELECT * FROM usage ORDER BY total DESC LIMIT 2`), "dave", "bob")
			// Unknown ORDER BY column still errors.
			if _, err := db.Exec(`SELECT * FROM usage ORDER BY ghost`); err == nil {
				t.Error("unknown ORDER BY column accepted")
			}

			// The API-level mirror of the descending fast path.
			rows, err := db.LatestViewRows("usage", 2)
			if err != nil || len(rows) != 2 || rows[0][0].AsString() != "eve" || rows[1][0].AsString() != "dave" {
				t.Errorf("LatestViewRows = %v, %v", rows, err)
			}
		})
	}
}

// TestViewResultsCallerOwned pins the ownership contract: every tuple a
// read returns is the caller's to mutate. Projection views used to hand
// out aliased store tuples from ViewRows/ViewLookup but cloned on
// ViewScanRange — now all paths clone, so scribbling over a result must
// never corrupt the view.
func TestViewResultsCallerOwned(t *testing.T) {
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, stmt := range []string{
		`CREATE CHRONICLE calls (acct STRING, minutes INT)`,
		`CREATE VIEW callers AS SELECT DISTINCT acct FROM calls WITH STORE BTREE`,
		`APPEND INTO calls VALUES ('alice', 1)`,
		`APPEND INTO calls VALUES ('bob', 2)`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	scribble := func(rows []chronicledb.Row) {
		for _, r := range rows {
			r[0] = chronicledb.Str("scribbled")
		}
	}
	rows, err := db.Engine().ViewRows("callers")
	if err != nil || len(rows) != 2 {
		t.Fatalf("ViewRows = %v, %v", rows, err)
	}
	scribble(rows)
	ranged, err := db.LookupRange("callers",
		chronicledb.Tuple{chronicledb.Str("a")}, chronicledb.Tuple{chronicledb.Str("z")})
	if err != nil || len(ranged) != 2 {
		t.Fatalf("LookupRange = %v, %v", ranged, err)
	}
	scribble(ranged)
	if row, ok, err := db.Lookup("callers", chronicledb.Str("alice")); err != nil || !ok {
		t.Fatalf("Lookup = %v %v", ok, err)
	} else {
		row[0] = chronicledb.Str("scribbled")
	}
	// The view is untouched by any of the scribbles.
	fresh, err := db.Engine().ViewRows("callers")
	if err != nil || len(fresh) != 2 {
		t.Fatalf("ViewRows after scribble = %v, %v", fresh, err)
	}
	for i, want := range []string{"alice", "bob"} {
		if got := fresh[i][0].AsString(); got != want {
			t.Errorf("row %d = %q, want %q — a returned tuple aliased the store", i, got, want)
		}
	}
}

// readHotDB builds a warm B-tree view for the read guards and benchmarks.
func readHotDB(tb testing.TB, groups int) *chronicledb.DB {
	tb.Helper()
	db, err := chronicledb.Open(chronicledb.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	for _, stmt := range []string{
		`CREATE CHRONICLE calls (acct STRING, minutes INT)`,
		`CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total, COUNT(*) AS n
		 FROM calls GROUP BY acct WITH STORE BTREE`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			tb.Fatal(err)
		}
	}
	tuples := make([]chronicledb.Tuple, 0, groups)
	for i := 0; i < groups; i++ {
		tuples = append(tuples, chronicledb.Tuple{
			chronicledb.Str(fmt.Sprintf("acct%04d", i)), chronicledb.Int(3)})
	}
	if _, _, err := db.AppendRows("calls", tuples); err != nil {
		tb.Fatal(err)
	}
	return db
}

// TestReadAllocGuards pins the steady-state allocation counts of the
// lock-free read path. The budgets are small fixed constants (row
// materialization allocates the result the caller owns); regressions here
// mean the snapshot path started copying or locking per read.
func TestReadAllocGuards(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	db := readHotDB(t, 512)
	key := chronicledb.Str("acct0007")

	// Lookup materializes one caller-owned row: vals copy + aggregate
	// results + the tuple itself. Measured 5; 6 leaves one headroom.
	t.Run("lookup", func(t *testing.T) {
		got := testing.AllocsPerRun(1000, func() {
			if _, ok, err := db.Lookup("usage", key); err != nil || !ok {
				t.Fatal(ok, err)
			}
		})
		if got > 6 {
			t.Errorf("ViewLookup: %.1f allocs/op, budget 6 — the read hot path regressed", got)
		} else {
			t.Logf("ViewLookup: %.1f allocs/op (budget 6)", got)
		}
	})

	// A bounded descending walk ("latest 3 groups") allocates the three
	// result rows plus the slice; measured 11, budget 14.
	t.Run("latest", func(t *testing.T) {
		got := testing.AllocsPerRun(1000, func() {
			rows, err := db.LatestViewRows("usage", 3)
			if err != nil || len(rows) != 3 {
				t.Fatal(len(rows), err)
			}
		})
		if got > 14 {
			t.Errorf("LatestViewRows(3): %.1f allocs/op, budget 14", got)
		} else {
			t.Logf("LatestViewRows(3): %.1f allocs/op (budget 14)", got)
		}
	})
}

// BenchmarkReadHotPath measures the lock-free read path: point lookups and
// bounded scans against a warm 512-group B-tree view, sequential and with
// all cores contending (`make bench-reads`).
func BenchmarkReadHotPath(b *testing.B) {
	db := readHotDB(b, 512)
	key := chronicledb.Str("acct0007")
	b.Run("lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := db.Lookup("usage", key); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("lookup-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, ok, err := db.Lookup("usage", key); err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	})
	b.Run("latest16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.LatestViewRows("usage", 16)
			if err != nil || len(rows) != 16 {
				b.Fatal(len(rows), err)
			}
		}
	})
	b.Run("range64", func(b *testing.B) {
		lo := chronicledb.Tuple{chronicledb.Str("acct0100")}
		hi := chronicledb.Tuple{chronicledb.Str("acct0164")}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.LookupRange("usage", lo, hi)
			if err != nil || len(rows) != 64 {
				b.Fatal(len(rows), err)
			}
		}
	})
}
