package chronicledb

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chronicledb/internal/algebra"
	"chronicledb/internal/calendar"
	"chronicledb/internal/chronicle"
	"chronicledb/internal/dedup"
	"chronicledb/internal/engine"
	"chronicledb/internal/fault"
	"chronicledb/internal/feed"
	"chronicledb/internal/pred"
	"chronicledb/internal/relation"
	"chronicledb/internal/repl"
	"chronicledb/internal/shard"
	"chronicledb/internal/stats"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
	"chronicledb/internal/wal"
)

// ErrReadOnly is wrapped by every write rejected after the database has
// degraded to read-only (a WAL append, flush, or sync failed). Reads keep
// working; writes fail fast rather than risk acking records the log
// cannot make durable.
var ErrReadOnly = errors.New("chronicledb: database is read-only after a WAL failure")

// ErrNotPrimary is wrapped by every write rejected on a replica: followers
// serve reads and apply the replication stream, and only a promotion
// (DB.Promote, POST /promote) turns one into a writable primary.
var ErrNotPrimary = errors.New("chronicledb: replica is read-only; send writes to the primary")

// FS re-exports the filesystem abstraction so callers can inject a
// fault.Disk (crash-torture tests) via Options.FS.
type FS = fault.FS

// Options configures a DB.
type Options struct {
	// Dir enables durability: the directory holds catalog.sql, the WAL,
	// and checkpoints. Empty means a purely in-memory database.
	Dir string
	// SyncWAL makes every acknowledged write durable. By default it uses
	// group commit: concurrent appends queue on the log's commit door and
	// one fsync acknowledges the whole batch. Ignored without Dir.
	SyncWAL bool
	// SyncPerAppend forces the pre-group-commit behavior: one fsync inside
	// every WAL append. Only meaningful with SyncWAL; kept for the E16
	// ablation and for callers that want strictly serial durability.
	SyncPerAppend bool
	// Shards > 0 runs the sharded execution layer: chronicle groups (and
	// their views) are hash-partitioned across that many single-writer
	// shards, each with its own engine and WAL segment; relation updates
	// apply under a cross-shard epoch barrier. Zero keeps the classic
	// single-engine kernel.
	Shards int
	// WALSegmentBytes caps each WAL segment file: an append that would push
	// the active segment past the cap first rotates to a fresh segment,
	// registered in the durable manifest, so recovery replay and disk usage
	// are bounded by write rate since the last checkpoint rather than by
	// uptime. Zero means DefaultSegmentBytes; negative selects the legacy
	// single-file-per-shard layout (one grow-until-checkpoint WAL, full
	// checkpoints into checkpoint.bin — the E20 ablation baseline).
	WALSegmentBytes int64
	// CheckpointFullEvery folds the incremental checkpoint chain: every
	// Nth checkpoint is written full and supersedes the whole chain (the
	// compactor then deletes the obsolete increments). Zero means
	// DefaultCheckpointFullEvery; 1 makes every checkpoint full. Ignored
	// in the legacy layout, where every checkpoint is full.
	CheckpointFullEvery int
	// ViewBlockBytes is the target encoded size of one view block in the
	// blocked persistent view store (segmented layout only): B-tree view
	// state is partitioned into blocks, checkpoints re-serialize only the
	// blocks dirtied since the last cut, and the block cache pages cold
	// blocks from the checkpoint chain. Zero means view.DefaultBlockBytes
	// (8 KiB); negative disables blocked stores (views stay fully resident
	// and checkpoint as whole images — the E21 ablation baseline).
	ViewBlockBytes int64
	// ViewCacheBytes bounds the bytes of view state resident in memory
	// across all views and shards; cold clean blocks are evicted (CLOCK)
	// and fault back in on demand, so total view state can exceed RAM.
	// Zero means unbounded (blocks are tracked but never evicted). Ignored
	// when blocked stores are disabled.
	ViewCacheBytes int64
	// NoCompact disables segment reclamation: sealed segments wholly below
	// the checkpoint LSN are kept instead of deleted, and superseded
	// checkpoint-chain files survive folds. Ablation baseline for E20's
	// bounded-disk claim; leave false in production.
	NoCompact bool
	// DefaultRetention applies to chronicles created without RETAIN. The
	// zero value (RetainNone) is the pure chronicle model: nothing stored.
	DefaultRetention Retention
	// RelationHistory keeps superseded relation versions for AsOf reads.
	// Needed only when recompute baselines / reference checks will run.
	RelationHistory bool
	// NoDispatchIndex disables the Section 5.2 predicate index (ablation).
	NoDispatchIndex bool
	// LockedReads restores the engine-wide read lock on every summary
	// query (the pre-snapshot behavior), so reads serialize against
	// appends. Ablation baseline for E17; leave false in production.
	LockedReads bool
	// Clock supplies chronons for appends; nil uses wall-clock nanoseconds.
	Clock func() int64
	// FS overrides the filesystem used for all durable state. Nil means
	// the real OS; tests inject a fault.Disk to simulate power cuts,
	// fsync failures, and disk-full conditions.
	FS fault.FS
	// DedupCap bounds the idempotency table (entries per shard engine).
	// Zero means the default (64Ki entries).
	DedupCap int
	// DedupDisabled turns off request deduplication: AppendRowsIdem applies
	// every delivery unconditionally (at-least-once). Ablation baseline for
	// the E18 experiment; leave false in production.
	DedupDisabled bool
	// Feed enables changefeeds: every persistent view's maintenance delta
	// is captured at commit, stamped with its LSN, and published to live
	// subscribers (DB.Watch, the server's /watch endpoint, WATCH in SQL).
	// Off by default: capture copies delta rows even with no subscribers
	// (the per-view resume tail retains them), a cost the zero-allocation
	// append path should not pay unless changefeeds are wanted.
	Feed bool
	// FeedTailFrames bounds the per-view in-memory resume window, in
	// frames (delta batches). Reconnecting subscribers whose cursor is
	// inside the window resume from memory; older cursors get a snapshot.
	// Zero means feed.DefaultTailFrames (1024). Ignored without Feed.
	FeedTailFrames int
	// FeedRing bounds each subscriber's live delivery buffer, in frames; a
	// subscriber that falls further behind is shed rather than allowed to
	// backpressure the append path. Zero means feed.DefaultRing (256).
	// Ignored without Feed.
	FeedRing int
	// MaintWorkers bounds per-append view-maintenance parallelism: once the
	// shared-delta plan has computed every affected view's delta, the folds
	// into independent view stores run across up to this many goroutines
	// (per shard engine, counting the appending one). 1 forces the serial
	// path; 0 selects GOMAXPROCS — which on a single-core host is 1, so
	// parallel maintenance turns on exactly where it can pay.
	MaintWorkers int
	// ReplicaOf makes this database a follower of the primary at the given
	// base URL (e.g. "http://10.0.0.1:7457"): it opens read-only for
	// clients, tails the primary's replication stream, and applies every
	// frame through the recovery paths, so reads, scans, and Watch serve
	// the primary's state within the replication lag. Empty means primary.
	ReplicaOf string
	// FollowerID identifies this follower in the primary's ack table and
	// stream handler. Empty generates a random id at Open; set it to keep a
	// stable identity across restarts (the id is only advisory — catch-up
	// position comes from LSNs, not the id).
	FollowerID string
	// AckMode selects when a primary acknowledges a write: "async" (or
	// empty) acks at local durability; "sync" additionally waits — bounded
	// by SyncAckTimeout — until at least one follower has acknowledged the
	// write's LSN, so the write survives the loss of the primary. On
	// timeout or with no followers attached the write is still acked and a
	// degraded-acks counter increments: availability degrades before the
	// write path wedges.
	AckMode string
	// SyncAckTimeout bounds the AckMode "sync" wait (default 2s).
	SyncAckTimeout time.Duration
	// MaxStaleness bounds follower reads: when the replica has not been
	// caught up to the primary's advertised cursor within this duration,
	// DB.Stale reports true and the server fails reads with 503
	// "stale-replica" rather than serve arbitrarily old state. Zero means
	// no bound (reads always served). Ignored on a primary.
	MaxStaleness time.Duration
	// ReplBuffer is the per-follower live fan-out buffer in frames; a
	// follower that falls further behind is dropped to disk catch-up.
	// Zero means 1024.
	ReplBuffer int
}

// Retention re-exports the chronicle retention policy.
type Retention = chronicle.Retention

// Retention constants.
const (
	RetainAll  = chronicle.RetainAll
	RetainNone = chronicle.RetainNone
)

// Row is a query result row.
type Row = value.Tuple

// Result is the outcome of Exec: either rows (queries, SHOW, EXPLAIN) or a
// message (DDL and DML acknowledgments).
type Result struct {
	Columns []string
	Rows    []Row
	Message string
}

// Kernel is the execution surface shared by the single-engine kernel
// (*engine.Engine) and the sharded router (*shard.Router). The statement
// executor, recovery, and checkpointing all run against it, so the two
// kernels are interchangeable behind the DB facade.
type Kernel interface {
	CreateGroup(name string) (*chronicle.Group, error)
	CreateChronicle(name, groupName string, schema *value.Schema, retain *chronicle.Retention) (*chronicle.Chronicle, error)
	CreateRelation(name string, schema *value.Schema, keyCols []int) (*relation.Relation, error)
	CreateView(def view.Def, kind view.StoreKind, filter pred.Predicate, filterChronicle *chronicle.Chronicle) (*view.View, error)
	CreatePeriodicView(name string, def view.Def, cal calendar.Calendar, expireAfter int64, kind view.StoreKind) (*calendar.PeriodicView, error)
	DropView(name string) error

	Append(chronicleName string, tuples []value.Tuple) (int64, error)
	AppendEach(chronicleName string, tuples []value.Tuple) (first, last int64, err error)
	AppendEachIdem(chronicleName string, tuples []value.Tuple, clientID, requestID string) (first, last int64, deduped bool, err error)
	AppendEachAt(chronicleName string, firstSN, chronon int64, tuples []value.Tuple, clientID, requestID string) error
	AppendBatch(parts []engine.MutationPart) (int64, error)
	AppendAt(chronicleName string, sn, chronon int64, tuples []value.Tuple) (int64, error)
	AppendBatchAt(parts []engine.MutationPart, sn, chronon int64) (int64, error)
	Upsert(relationName string, t value.Tuple) error
	DeleteKey(relationName string, keyVals value.Tuple) (bool, error)

	DedupEntries() []dedup.Entry
	RestoreDedupEntry(ent dedup.Entry)
	DedupStats() (entries int, hits int64, evictions int64)

	Stats() engine.Stats
	MaintenanceLatency() stats.Snapshot
	MaintWorkers() int
	ViewSharedPlan(name string) ([]algebra.PlanNodeInfo, bool)
	LSN() uint64
	RestoreLSN(lsn uint64)

	Group(name string) (*chronicle.Group, bool)
	GroupNames() []string
	Chronicle(name string) (*chronicle.Chronicle, bool)
	ChronicleNames() []string
	ChronicleRows(name string) ([]chronicle.Row, error)
	Relation(name string) (*relation.Relation, bool)
	RelationNames() []string
	RelationRows(name string) ([]value.Tuple, error)
	View(name string) (*view.View, bool)
	ViewNames() []string
	ViewLookup(name string, key value.Tuple) (value.Tuple, bool, error)
	ViewRows(name string) ([]value.Tuple, error)
	ViewScanRange(name string, lo, hi value.Tuple) ([]value.Tuple, error)
	ViewScanFunc(name string, fn func(value.Tuple) bool) error
	ViewScanAt(name string, fn func(value.Tuple) bool) (uint64, error)
	ViewScanRangeFunc(name string, lo, hi value.Tuple, fn func(value.Tuple) bool) error
	ViewScanDescFunc(name string, fn func(value.Tuple) bool) error
	ReadStats() engine.ReadStats
	OldestSnapshotUnixNano() int64
	PeriodicView(name string) (*calendar.PeriodicView, bool)
	PeriodicViewNames() []string
}

// DB is a chronicle database: Definition 2.1's (C, R, L, V) with a
// declarative statement interface, durability, and recovery.
type DB struct {
	mu   sync.Mutex
	eng  Kernel
	opts Options
	fs   fault.FS

	// Exactly one of these backs eng.
	uno    *engine.Engine
	router *shard.Router

	// hub is the changefeed fan-out; nil unless Options.Feed. It is wired
	// into the kernel before recovery so WAL replay repopulates the
	// per-view resume tails with the original LSNs.
	hub *feed.Hub

	// Open WAL logs, one per stream. Unsharded: the chronicle stream.
	// Sharded: one per shard followed by the relation stream. In the
	// legacy layout these are the fixed-name grow-until-checkpoint files;
	// in the segmented layout each log is the stream's active segment and
	// rotates at the cap.
	logs          []*wal.Log
	catalogPath   string
	catalogSynced bool // catalog.sql's dir entry is durable

	// Segmented-layout state (zero/nil in legacy mode). man is the current
	// durable manifest; manMu serializes flips (rotation hook, checkpoint,
	// stats snapshots). ckptMarks are the dirty markers captured at the
	// last checkpoint — nil forces the next checkpoint full; ddlDirty does
	// the same after DDL (drops are invisible to the monotonic markers).
	// incrSinceFull counts chain entries since the last fold; it and
	// ckptMarks are guarded by db.mu (checkpoints are serialized).
	man           wal.Manifest
	manMu         sync.Mutex
	ckptMarks     map[string]uint64
	incrSinceFull int
	ddlDirty      atomic.Bool

	// Storage observability counters.
	lastCkptLSN    atomic.Uint64
	ckptFull       atomic.Int64
	ckptIncr       atomic.Int64
	ckptsFolded    atomic.Int64
	reclaimedBytes atomic.Int64
	segsReclaimed  atomic.Int64

	// viewCache is the shared block cache behind every paged view; nil
	// when blocked view stores are disabled (legacy layout, in-memory DB,
	// or Options.ViewBlockBytes < 0). ckptDirtyBlocks/ckptTotalBlocks
	// record the block counts of the last checkpoint cut.
	viewCache       *view.Cache
	ckptDirtyBlocks atomic.Int64
	ckptTotalBlocks atomic.Int64

	// Degradation latch: the first WAL failure flips the DB read-only.
	readOnly atomic.Bool
	roMu     sync.Mutex
	roCause  error

	// Baselines captured at Open for the SHOW STATS hot-path gauges:
	// allocations per append and fsyncs per second are both measured
	// relative to these.
	openMallocs uint64
	openAppends int64
	openTime    time.Time

	// ckptBuf is buildCheckpoint's reusable serialization buffer (guarded
	// by mu: checkpoints are serialized).
	ckptBuf []byte

	// Replication state. replSrc is the primary-side stream source, wired
	// into every log's tap (nil unless the layout is durable + segmented —
	// the legacy layout truncates its WAL at checkpoints and cannot serve
	// backlog catch-up). replica is the follower loop (nil on a primary).
	// replicaMode latches while the role is replica; Promote clears it.
	// ddlSeq counts applied DDL statements — the catalog index space shared
	// by primary and follower. degradedAcks counts sync-mode writes acked
	// without a follower ack (timeout or no followers).
	replSrc      *repl.Source
	replMu       sync.Mutex // guards the replica pointer handoff (Close/Promote)
	replica      *repl.Replica
	replicaMode  atomic.Bool
	ddlSeq       atomic.Uint64
	degradedAcks atomic.Int64
}

// Open creates or reopens a database. With Options.Dir set, Open replays
// the catalog, the latest checkpoint, and the WAL tail, in that order.
// Reopening a directory with a different shard count (including switching
// between sharded and unsharded) recovers the old layout, checkpoints, and
// rewrites the WAL layout for the new count.
func Open(opts Options) (*DB, error) {
	db := &DB{opts: opts, fs: opts.FS}
	if db.fs == nil {
		db.fs = fault.OS
	}
	switch opts.AckMode {
	case "", "async", "sync":
	default:
		return nil, fmt.Errorf("chronicledb: unknown AckMode %q (want \"async\" or \"sync\")", opts.AckMode)
	}
	if opts.ReplicaOf != "" {
		db.replicaMode.Store(true)
		if db.opts.FollowerID == "" {
			db.opts.FollowerID = fmt.Sprintf("follower-%d", time.Now().UnixNano())
		}
	}
	ecfg := engine.Config{
		DefaultRetention: opts.DefaultRetention,
		RelationHistory:  opts.RelationHistory,
		DispatchIndexed:  !opts.NoDispatchIndex,
		LockedReads:      opts.LockedReads,
		Clock:            opts.Clock,
		DedupCap:         opts.DedupCap,
		DedupDisabled:    opts.DedupDisabled,
		MaintWorkers:     opts.MaintWorkers,
	}
	if db.segmented() && opts.ViewBlockBytes >= 0 {
		// Blocked view stores: B-tree views page fixed-size blocks against
		// one cache shared across shards, faulting cold blocks back from
		// the checkpoint chain through the db-level fetcher.
		db.viewCache = view.NewCache(opts.ViewCacheBytes)
		ecfg.ViewCache = db.viewCache
		ecfg.BlockFetch = db.blockFetch
		ecfg.ViewBlockBytes = opts.ViewBlockBytes
	}
	if opts.Shards > 0 {
		r, err := shard.NewRouter(shard.Config{Shards: opts.Shards, Engine: ecfg})
		if err != nil {
			return nil, fmt.Errorf("chronicledb: %w", err)
		}
		db.router = r
		db.eng = r
	} else {
		db.uno = engine.New(ecfg)
		db.eng = db.uno
	}
	if opts.Feed {
		db.hub = feed.NewHub(feed.Config{TailFrames: opts.FeedTailFrames, Ring: opts.FeedRing})
		if db.router != nil {
			// Deferred mode: the shard writer publishes after each group
			// commit, merging every shard's frames through the shared hub.
			db.router.SetFeed(db.hub)
		} else {
			db.uno.SetFeed(db.hub, false)
		}
	}
	if opts.Dir == "" {
		db.markOpen()
		if opts.ReplicaOf != "" {
			db.startReplica()
		}
		return db, nil
	}
	if err := db.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		db.stopKernel()
		return nil, fmt.Errorf("chronicledb: %w", err)
	}
	db.catalogPath = filepath.Join(opts.Dir, "catalog.sql")
	if _, err := db.fs.Stat(db.catalogPath); err == nil {
		db.catalogSynced = true
	}

	oldManifest, hadManifest, err := wal.ReadManifestFS(db.fs, opts.Dir)
	if err != nil {
		db.stopKernel()
		return nil, fmt.Errorf("chronicledb: %w", err)
	}
	if err := db.recover(oldManifest, hadManifest); err != nil {
		db.stopKernel()
		return nil, err
	}
	if db.segmented() {
		if err := db.openSegmented(oldManifest, hadManifest); err != nil {
			db.stopKernel()
			return nil, err
		}
		db.installRecorders()
	} else {
		if err := db.openLogs(); err != nil {
			db.stopKernel()
			return nil, err
		}
		db.installRecorders()
		if err := db.normalizeLayout(oldManifest, hadManifest); err != nil {
			db.Close()
			return nil, err
		}
	}
	if db.segmented() {
		// Tap every log for replication fan-out. The source exists on
		// followers too: applied frames land in the follower's own WAL, so a
		// promoted primary (or a cascading follower) can serve the stream
		// from the LSNs it inherited.
		src := repl.NewSource(len(db.logs), db.eng.LSN())
		for i, l := range db.logs {
			onAppend, onDurable := src.Tap(i)
			l.SetTap(onAppend, onDurable)
		}
		db.replSrc = src
	}
	db.markOpen()
	if opts.ReplicaOf != "" {
		db.startReplica()
	}
	return db, nil
}

// blockFetch reads one durable view block from the checkpoint chain. The
// manifest invariant (a referenced chain file exists until the flip that
// drops it, and blocked images only reference files their own chain keeps)
// makes a missing file genuine corruption rather than a race.
func (db *DB) blockFetch(ref view.BlockRef) ([]byte, error) {
	f, err := db.fs.Open(filepath.Join(db.opts.Dir, ref.File))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(ref.Off, io.SeekStart); err != nil {
		return nil, err
	}
	buf := make([]byte, ref.Len)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// markOpen captures the hot-path measurement baselines once recovery and
// layout normalization are done, so SHOW STATS gauges reflect only the
// serving workload.
func (db *DB) markOpen() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	db.openMallocs = ms.Mallocs
	db.openAppends = db.eng.Stats().Appends
	db.openTime = time.Now()
}

// openLogs opens the WAL files for the active kernel layout.
func (db *DB) openLogs() error {
	var paths []string
	if db.router != nil {
		for i := 0; i < db.router.NumShards(); i++ {
			paths = append(paths, filepath.Join(db.opts.Dir, wal.SegmentName(i)))
		}
		paths = append(paths, filepath.Join(db.opts.Dir, wal.RelationSegment))
	} else {
		paths = append(paths, filepath.Join(db.opts.Dir, "chronicle.wal"))
	}
	policy := db.syncPolicy()
	for _, p := range paths {
		log, err := wal.OpenPolicyFS(db.fs, p, policy)
		if err != nil {
			db.closeLogs()
			return fmt.Errorf("chronicledb: %w", err)
		}
		db.logs = append(db.logs, log)
	}
	// Make the segments' directory entries durable: a freshly created log
	// must not vanish in a power cut after records were acked into it.
	if err := db.fs.SyncDir(db.opts.Dir); err != nil {
		db.closeLogs()
		return fmt.Errorf("chronicledb: %w", err)
	}
	return nil
}

// failWrites latches the first WAL failure and degrades the DB to
// read-only: subsequent writes fail fast with ErrReadOnly instead of
// stalling on a log that can no longer guarantee durability.
func (db *DB) failWrites(err error) {
	db.roMu.Lock()
	if db.roCause == nil {
		db.roCause = err
	}
	db.roMu.Unlock()
	db.readOnly.Store(true)
}

// ReadOnly reports whether the database has degraded to read-only, and
// the first error that caused it.
func (db *DB) ReadOnly() (bool, error) {
	if !db.readOnly.Load() {
		return false, nil
	}
	db.roMu.Lock()
	defer db.roMu.Unlock()
	return true, db.roCause
}

// writeGate rejects writes once the DB is read-only.
func (db *DB) writeGate() error {
	if !db.readOnly.Load() {
		return nil
	}
	db.roMu.Lock()
	cause := db.roCause
	db.roMu.Unlock()
	if cause != nil {
		return fmt.Errorf("%w (cause: %v)", ErrReadOnly, cause)
	}
	return ErrReadOnly
}

// installRecorders wires each kernel mutation source to its WAL log, and —
// when the caller asked for durability — each mutation path to its log's
// group-commit door. Committers are installed only under SyncWAL: without
// it, acknowledged writes were never durable, so there is nothing to commit.
func (db *DB) installRecorders() {
	if db.router != nil {
		// Each shard's appends go to its own segment; relation updates
		// (which the router applies itself, under the barrier) go to the
		// relation segment.
		relLog := db.logs[len(db.logs)-1]
		for i := 0; i < db.router.NumShards(); i++ {
			log := db.logs[i]
			db.router.Engine(i).SetRecorder(db.recorder(log))
			if db.opts.SyncWAL {
				// The shard's writer goroutine commits once per coalesced
				// batch; direct AppendAt paths commit through the router.
				db.router.SetShardCommitter(i, db.committer(log))
			}
		}
		db.router.SetRelationRecorder(db.recorder(relLog))
		if db.opts.SyncWAL {
			db.router.SetRelationCommitter(db.committer(relLog))
		}
		return
	}
	db.uno.SetRecorder(db.recorder(db.logs[0]))
	if db.opts.SyncWAL {
		db.uno.SetCommitter(db.committer(db.logs[0]))
	}
}

// recorder builds the WAL recorder for one log: an append failure aborts
// the mutation (the engine applies nothing after a recorder error) and
// latches the read-only degradation. The record's Parts slice is scratch
// owned by the closure — safe because each recorder is called only under
// its engine's (or the router's relation) mutation lock, and the log copies
// everything into its frame buffer before Append returns.
func (db *DB) recorder(log *wal.Log) func(engine.Mutation) error {
	var parts []wal.Part
	return func(m engine.Mutation) error {
		if err := db.writeGate(); err != nil {
			return err
		}
		rec := wal.Record{LSN: m.LSN, SN: m.SN, Chronon: m.Chronon, Relation: m.Relation, Tuple: m.Tuple}
		switch m.Kind {
		case engine.MutAppend:
			rec.Kind = wal.RecAppend
			parts = parts[:0]
			for _, p := range m.Parts {
				parts = append(parts, wal.Part{Chronicle: p.Chronicle, Tuples: p.Tuples})
			}
			rec.Parts = parts
		case engine.MutAppendEach:
			rec.Kind = wal.RecAppendEach
			rec.ClientID = m.ClientID
			rec.RequestID = m.RequestID
			parts = parts[:0]
			for _, p := range m.Parts {
				parts = append(parts, wal.Part{Chronicle: p.Chronicle, Tuples: p.Tuples})
			}
			rec.Parts = parts
		case engine.MutUpsert:
			rec.Kind = wal.RecUpsert
		case engine.MutDelete:
			rec.Kind = wal.RecDelete
		}
		if err := log.Append(rec); err != nil {
			db.failWrites(err)
			return err
		}
		return nil
	}
}

// committer builds the commit hook for one log: it opens the group-commit
// door (fsyncing once for every record appended so far) and latches the
// read-only degradation on failure, exactly like the recorder.
func (db *DB) committer(log *wal.Log) func() error {
	return func() error {
		if err := log.Commit(); err != nil {
			db.failWrites(err)
			return err
		}
		return nil
	}
}

// normalizeLayout converts the on-disk WAL layout to the legacy shape the
// active kernel expects (it only runs in legacy mode; segmented mode
// converts inside openSegmented). Everything recovered is checkpointed
// first (so no old WAL record is still needed), the new layout's manifest
// is made durable (or removed, for the manifest-less unsharded layout),
// and only then are the old layout's files — v1 shard segments, v2
// segments and chain checkpoints, the legacy single log — removed, so a
// crash mid-conversion always leaves a manifest whose references exist.
func (db *DB) normalizeLayout(old wal.Manifest, hadManifest bool) error {
	legacyWAL := filepath.Join(db.opts.Dir, "chronicle.wal")
	oldFiles := func(keep map[string]bool) []string {
		var names []string
		for _, seg := range old.Segments {
			if !keep[seg] {
				names = append(names, seg)
			}
		}
		for _, s := range old.Live {
			if !keep[s.Name] {
				names = append(names, s.Name)
			}
		}
		for _, c := range old.Checkpoints {
			if !keep[c.Name] {
				names = append(names, c.Name)
			}
		}
		return names
	}
	if db.router == nil {
		if !hadManifest {
			return nil // classic layout already
		}
		if err := db.Checkpoint(); err != nil {
			return err
		}
		// Drop the manifest first: from here recovery takes the legacy
		// unsharded path (checkpoint.bin + chronicle.wal) and never reads
		// the old layout's files again.
		db.fs.Remove(filepath.Join(db.opts.Dir, wal.ManifestName))
		if err := db.fs.SyncDir(db.opts.Dir); err != nil {
			return fmt.Errorf("chronicledb: %w", err)
		}
		for _, name := range oldFiles(map[string]bool{"chronicle.wal": true}) {
			db.fs.Remove(filepath.Join(db.opts.Dir, name))
		}
		return db.fs.SyncDir(db.opts.Dir)
	}
	_, statErr := db.fs.Stat(legacyWAL)
	hadLegacy := statErr == nil
	if hadManifest && old.Version == 1 && old.Shards == db.router.NumShards() && !hadLegacy {
		return nil // layout already matches
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	cur := wal.NewManifest(db.router.NumShards())
	keep := make(map[string]bool, len(cur.Segments))
	for _, seg := range cur.Segments {
		keep[seg] = true
	}
	if err := wal.WriteManifestFS(db.fs, db.opts.Dir, cur); err != nil {
		return fmt.Errorf("chronicledb: %w", err)
	}
	if hadManifest {
		for _, name := range oldFiles(keep) {
			db.fs.Remove(filepath.Join(db.opts.Dir, name))
		}
	}
	if hadLegacy {
		db.fs.Remove(legacyWAL)
	}
	return db.fs.SyncDir(db.opts.Dir)
}

// stopKernel stops shard writers and the maintenance fold pools. The
// router stops its engines' pools itself after draining the writers; the
// single-engine kernel stops its pool here (callers hold db.mu, so no
// mutation — and hence no maintenance batch — is in flight).
func (db *DB) stopKernel() {
	if db.router != nil {
		db.router.Close()
	}
	if db.uno != nil {
		db.uno.StopMaintenance()
	}
}

func (db *DB) closeLogs() error {
	var first error
	for _, l := range db.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	db.logs = nil
	return first
}

// Close drains shard writers and flushes and closes the WAL. The in-memory
// state stays usable for reads but further updates will fail.
func (db *DB) Close() error {
	// Stop the replica loop before taking db.mu: its apply goroutine may be
	// inside a DDL apply that needs db.mu, and it must quiesce before the
	// logs close underneath it.
	db.stopReplica()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stopKernel()
	if db.logs == nil {
		return nil
	}
	err := db.closeLogs()
	if db.uno != nil {
		db.uno.SetRecorder(nil)
	}
	return err
}

// Flush pushes buffered WAL records to the OS (no-op in memory mode).
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, l := range db.logs {
		if err := l.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Engine exposes the kernel for advanced callers (benchmarks, tests). In
// sharded mode this is the *shard.Router, otherwise the *engine.Engine.
func (db *DB) Engine() Kernel { return db.eng }

// Feed returns the changefeed hub, or nil when Options.Feed is off.
func (db *DB) Feed() *feed.Hub { return db.hub }

// FeedStats snapshots the changefeed counters (zero value when feeds are
// disabled).
func (db *DB) FeedStats() feed.Stats {
	if db.hub == nil {
		return feed.Stats{}
	}
	return db.hub.Stats()
}

// ScanViewAt streams a view's rows like ScanView and returns the applied
// LSN of the scanned state — the anchor for splicing a snapshot read into
// the live delta stream. Rows passed to fn are caller-owned.
func (db *DB) ScanViewAt(viewName string, fn func(Row) bool) (uint64, error) {
	return db.eng.ViewScanAt(viewName, fn)
}

// Router returns the shard router, or nil for a single-engine database.
func (db *DB) Router() *shard.Router { return db.router }

// Shards reports the shard count (0 for the single-engine kernel).
func (db *DB) Shards() int {
	if db.router == nil {
		return 0
	}
	return db.router.NumShards()
}

// Stats returns engine counters (summed across shards when sharded).
func (db *DB) Stats() engine.Stats { return db.eng.Stats() }

// MaintenanceLatency returns the per-append view maintenance latency
// distribution, merged across shards when sharded.
func (db *DB) MaintenanceLatency() stats.Snapshot { return db.eng.MaintenanceLatency() }

// WALStats aggregates durability counters across every open WAL segment,
// plus process-level hot-path gauges measured since Open.
type WALStats struct {
	Records int64          // WAL records appended since open
	Fsyncs  int64          // fsync calls since open
	Batches stats.Snapshot // records acked per fsync (group-commit batch size)

	Appends       int64   // kernel appends since Open
	AllocsPerOp   float64 // process mallocs per append since Open (all goroutines)
	FsyncsPerSec  float64 // fsync rate since Open
	UptimeSeconds float64 // seconds since Open

	// Segmented-layout gauges (zero in legacy mode or without a Dir).
	Segmented              bool
	SegmentCap             int64  // rotation threshold, bytes
	Segments               int    // live segment files, all streams
	SealedSegments         int    // of those, sealed (rotation completed)
	LiveBytes              int64  // bytes recovery would read (sealed + active)
	Rotations              int64  // segment rotations since open
	ReclaimedBytes         int64  // sealed bytes deleted by compaction since open
	SegmentsReclaimed      int64  // segments deleted by compaction since open
	Checkpoints            int    // checkpoint chain length
	CheckpointsFull        int64  // full images written since open
	CheckpointsIncremental int64  // incremental images written since open
	CheckpointsFolded      int64  // chain entries superseded by folds since open
	LastCheckpointLSN      uint64 // chain tip LSN (replay skip threshold)

	// Blocked view store gauges (zero when blocked stores are disabled).
	ViewCacheEnabled   bool
	ViewCacheHits      int64 // paged reads served from resident blocks
	ViewCacheMisses    int64 // block faults from the checkpoint chain
	ViewCacheEvictions int64 // blocks evicted by the CLOCK sweep
	ViewCacheBytes     int64 // bytes of view state currently resident
	ViewCacheBudget    int64 // resident-byte budget (0 = unbounded)
	CkptDirtyBlocks    int64 // blocks re-serialized by the last checkpoint
	CkptTotalBlocks    int64 // total blocks across paged views at that cut
}

// WALStats returns the merged durability and hot-path gauges. The
// allocations-per-append figure is a whole-process measurement (runtime
// mallocs divided by appends since Open), so it includes query and
// background work — useful as a trend line, not an exact per-op count;
// the exact counts are guarded by TestAllocGuards.
func (db *DB) WALStats() WALStats {
	var w WALStats
	var batches stats.Histogram
	for _, l := range db.logs {
		m := l.LogMetrics()
		w.Records += m.Records
		w.Fsyncs += m.Fsyncs
		w.Rotations += m.Rotations
		batches.Merge(&m.Batches)
	}
	w.Batches = batches.Snapshot()
	if db.segmented() {
		w.Segmented = true
		w.SegmentCap = db.segmentCap()
		for _, l := range db.logs {
			w.LiveBytes += l.LogMetrics().ActiveBytes
		}
		db.manMu.Lock()
		for _, s := range db.man.Live {
			w.Segments++
			if s.Sealed {
				w.SealedSegments++
				w.LiveBytes += s.Bytes
			}
		}
		w.Checkpoints = len(db.man.Checkpoints)
		db.manMu.Unlock()
		w.ReclaimedBytes = db.reclaimedBytes.Load()
		w.SegmentsReclaimed = db.segsReclaimed.Load()
		w.CheckpointsFull = db.ckptFull.Load()
		w.CheckpointsIncremental = db.ckptIncr.Load()
		w.CheckpointsFolded = db.ckptsFolded.Load()
		w.LastCheckpointLSN = db.lastCkptLSN.Load()
	}
	if c := db.viewCache; c != nil {
		w.ViewCacheEnabled = true
		w.ViewCacheHits = c.Hits()
		w.ViewCacheMisses = c.Misses()
		w.ViewCacheEvictions = c.Evictions()
		w.ViewCacheBytes = c.UsedBytes()
		w.ViewCacheBudget = c.Budget()
		w.CkptDirtyBlocks = db.ckptDirtyBlocks.Load()
		w.CkptTotalBlocks = db.ckptTotalBlocks.Load()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Appends = db.eng.Stats().Appends - db.openAppends
	if w.Appends > 0 {
		w.AllocsPerOp = float64(ms.Mallocs-db.openMallocs) / float64(w.Appends)
	}
	w.UptimeSeconds = time.Since(db.openTime).Seconds()
	if w.UptimeSeconds > 0 {
		w.FsyncsPerSec = float64(w.Fsyncs) / w.UptimeSeconds
	}
	return w
}

// Chronicle implements sqlparse.Catalog.
func (db *DB) Chronicle(name string) (*chronicle.Chronicle, bool) {
	return db.eng.Chronicle(name)
}

// Relation implements sqlparse.Catalog.
func (db *DB) Relation(name string) (*relation.Relation, bool) {
	return db.eng.Relation(name)
}

// View returns a persistent view handle by name.
func (db *DB) View(name string) (*view.View, bool) { return db.eng.View(name) }

// Append inserts tuples into a chronicle with the next sequence number,
// maintaining every affected persistent view before returning.
func (db *DB) Append(chronicleName string, tuples ...value.Tuple) (int64, error) {
	if err := db.writeGate(); err != nil {
		return 0, err
	}
	if err := db.roleGate(); err != nil {
		return 0, err
	}
	sn, err := db.eng.Append(chronicleName, tuples)
	if err == nil {
		db.ackWait()
	}
	return sn, err
}

// AppendRows bulk-ingests tuples into a chronicle, one transaction (own
// sequence number and maintenance round) per tuple, applied under a single
// kernel pass. It returns the first and last sequence numbers assigned.
func (db *DB) AppendRows(chronicleName string, tuples []value.Tuple) (first, last int64, err error) {
	if err := db.writeGate(); err != nil {
		return 0, 0, err
	}
	if err := db.roleGate(); err != nil {
		return 0, 0, err
	}
	first, last, err = db.eng.AppendEach(chronicleName, tuples)
	if err == nil {
		db.ackWait()
	}
	return first, last, err
}

// AppendRowsIdem is AppendRows with exactly-once semantics: a request
// already applied under the same (clientID, requestID) — including in a
// previous process life — returns its original sequence-number range with
// deduped=true instead of re-applying. The run is atomic (one WAL record
// covers the rows and the dedup entry), so a crash mid-request leaves
// either the whole request durable or none of it.
//
// The write gate runs before the dedup lookup on purpose: after a commit
// failure latches the DB read-only, a retry must see ErrReadOnly — never a
// stored ack for rows whose durability was not acknowledged.
func (db *DB) AppendRowsIdem(chronicleName string, tuples []value.Tuple, clientID, requestID string) (first, last int64, deduped bool, err error) {
	if err := db.writeGate(); err != nil {
		return 0, 0, false, err
	}
	if clientID == "" || requestID == "" {
		return 0, 0, false, fmt.Errorf("chronicledb: idempotent append needs a client id and request id")
	}
	if err := db.roleGate(); err != nil {
		return 0, 0, false, err
	}
	first, last, deduped, err = db.eng.AppendEachIdem(chronicleName, tuples, clientID, requestID)
	if err == nil && !deduped {
		// A deduped retry's rows were acked (and, under sync mode, waited
		// on) by the original delivery — don't pay the follower round trip
		// twice.
		db.ackWait()
	}
	return first, last, deduped, err
}

// DedupStats reports the idempotency table's observability counters
// (summed across shards when sharded).
func (db *DB) DedupStats() (entries int, hits int64, evictions int64) {
	return db.eng.DedupStats()
}

// Upsert applies a proactive relation update.
func (db *DB) Upsert(relationName string, t value.Tuple) error {
	if err := db.writeGate(); err != nil {
		return err
	}
	if err := db.roleGate(); err != nil {
		return err
	}
	if err := db.eng.Upsert(relationName, t); err != nil {
		return err
	}
	db.ackWait()
	return nil
}

// Lookup answers a summary query from a persistent view by group key. The
// read runs lock-free against the view's latest published snapshot, which
// includes every append that has returned — the "balance check before the
// next ATM withdrawal" guarantee — without serializing against appends in
// flight. The returned row is caller-owned.
func (db *DB) Lookup(viewName string, key ...value.Value) (Row, bool, error) {
	return db.eng.ViewLookup(viewName, value.Tuple(key))
}

// LookupRange returns the view rows whose group key is ≥ lo and < hi under
// tuple comparison (lo and hi may be key prefixes), in ascending key order.
// With a BTREE store this is a lock-free index range scan over the view's
// latest snapshot. The rows are caller-owned.
func (db *DB) LookupRange(viewName string, lo, hi Tuple) ([]Row, error) {
	return db.eng.ViewScanRange(viewName, lo, hi)
}

// ScanView streams a view's rows in ascending group-key order until fn
// returns false, without materializing the result. Rows passed to fn are
// caller-owned.
func (db *DB) ScanView(viewName string, fn func(Row) bool) error {
	return db.eng.ViewScanFunc(viewName, fn)
}

// ScanViewDesc streams a view's rows in descending group-key order until
// fn returns false — walk from the top, stop early. Rows passed to fn are
// caller-owned.
func (db *DB) ScanViewDesc(viewName string, fn func(Row) bool) error {
	return db.eng.ViewScanDescFunc(viewName, fn)
}

// LatestViewRows returns the view's last n rows by group key, highest key
// first — the "latest N groups" query, answered by a descending snapshot
// walk that stops after n rows instead of materializing the view.
func (db *DB) LatestViewRows(viewName string, n int) ([]Row, error) {
	if n <= 0 {
		return nil, nil
	}
	var out []Row
	err := db.eng.ViewScanDescFunc(viewName, func(t Row) bool {
		out = append(out, t)
		return len(out) < n
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadStats re-exports the read-path counters and latency distribution.
type ReadStats = engine.ReadStats

// ReadStats reports read traffic: lookup and scan counts plus the
// end-to-end read latency distribution, merged across shards when sharded.
func (db *DB) ReadStats() ReadStats { return db.eng.ReadStats() }

// ViewMaintStat attributes maintenance cost to one persistent view.
type ViewMaintStat struct {
	Name      string
	Applies   int64 // maintenance invocations
	DeltaRows int64 // expression delta rows folded in
	ApplyNs   int64 // wall time inside ApplyRows (fold + snapshot publish)
}

// MaintWorkers reports the resolved per-engine maintenance parallelism.
func (db *DB) MaintWorkers() int { return db.eng.MaintWorkers() }

// MaintAttribution returns the k slowest persistent views by accumulated
// apply time — where per-append maintenance cost actually goes. k ≤ 0
// returns all views. Ties and ordering are by ApplyNs descending, then
// name, so repeated calls are stable.
func (db *DB) MaintAttribution(k int) []ViewMaintStat {
	names := db.eng.ViewNames()
	out := make([]ViewMaintStat, 0, len(names))
	for _, n := range names {
		v, ok := db.eng.View(n)
		if !ok {
			continue
		}
		st := v.Stats()
		out = append(out, ViewMaintStat{Name: n, Applies: st.Applies, DeltaRows: st.DeltaRows, ApplyNs: st.ApplyNs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ApplyNs != out[j].ApplyNs {
			return out[i].ApplyNs > out[j].ApplyNs
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SnapshotAge reports how long ago the oldest live view snapshot was
// published — the staleness bound of the lock-free read path. Zero means
// no view currently publishes a snapshot (no views, or all hash-stored).
func (db *DB) SnapshotAge() time.Duration {
	at := db.eng.OldestSnapshotUnixNano()
	if at == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - at)
}
