package chronicledb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"chronicledb/internal/chronicle"
	"chronicledb/internal/engine"
	"chronicledb/internal/relation"
	"chronicledb/internal/value"
	"chronicledb/internal/view"
	"chronicledb/internal/wal"
)

// Options configures a DB.
type Options struct {
	// Dir enables durability: the directory holds catalog.sql, the WAL,
	// and checkpoints. Empty means a purely in-memory database.
	Dir string
	// SyncWAL fsyncs every WAL record (durable but slow). Ignored without Dir.
	SyncWAL bool
	// DefaultRetention applies to chronicles created without RETAIN. The
	// zero value (RetainNone) is the pure chronicle model: nothing stored.
	DefaultRetention Retention
	// RelationHistory keeps superseded relation versions for AsOf reads.
	// Needed only when recompute baselines / reference checks will run.
	RelationHistory bool
	// NoDispatchIndex disables the Section 5.2 predicate index (ablation).
	NoDispatchIndex bool
	// Clock supplies chronons for appends; nil uses wall-clock nanoseconds.
	Clock func() int64
}

// Retention re-exports the chronicle retention policy.
type Retention = chronicle.Retention

// Retention constants.
const (
	RetainAll  = chronicle.RetainAll
	RetainNone = chronicle.RetainNone
)

// Row is a query result row.
type Row = value.Tuple

// Result is the outcome of Exec: either rows (queries, SHOW, EXPLAIN) or a
// message (DDL and DML acknowledgments).
type Result struct {
	Columns []string
	Rows    []Row
	Message string
}

// DB is a chronicle database: Definition 2.1's (C, R, L, V) with a
// declarative statement interface, durability, and recovery.
type DB struct {
	mu   sync.Mutex
	eng  *engine.Engine
	opts Options

	log         *wal.Log
	catalogPath string
}

// Open creates or reopens a database. With Options.Dir set, Open replays
// the catalog, the latest checkpoint, and the WAL tail, in that order.
func Open(opts Options) (*DB, error) {
	db := &DB{
		eng: engine.New(engine.Config{
			DefaultRetention: opts.DefaultRetention,
			RelationHistory:  opts.RelationHistory,
			DispatchIndexed:  !opts.NoDispatchIndex,
			Clock:            opts.Clock,
		}),
		opts: opts,
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("chronicledb: %w", err)
	}
	db.catalogPath = filepath.Join(opts.Dir, "catalog.sql")
	if err := db.recover(); err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(opts.Dir, "chronicle.wal"), opts.SyncWAL)
	if err != nil {
		return nil, fmt.Errorf("chronicledb: %w", err)
	}
	db.log = log
	db.eng.SetRecorder(db.record)
	return db, nil
}

// record is the engine's WAL hook.
func (db *DB) record(m engine.Mutation) error {
	rec := wal.Record{SN: m.SN, Chronon: m.Chronon, Relation: m.Relation, Tuple: m.Tuple}
	switch m.Kind {
	case engine.MutAppend:
		rec.Kind = wal.RecAppend
		for _, p := range m.Parts {
			rec.Parts = append(rec.Parts, wal.Part{Chronicle: p.Chronicle, Tuples: p.Tuples})
		}
	case engine.MutUpsert:
		rec.Kind = wal.RecUpsert
	case engine.MutDelete:
		rec.Kind = wal.RecDelete
	}
	return db.log.Append(rec)
}

// Close flushes and closes the WAL. The in-memory state stays usable for
// reads but further updates will fail to persist.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return nil
	}
	err := db.log.Close()
	db.log = nil
	db.eng.SetRecorder(nil)
	return err
}

// Flush pushes buffered WAL records to the OS (no-op in memory mode).
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return nil
	}
	return db.log.Sync()
}

// Engine exposes the kernel for advanced callers (benchmarks, tests).
func (db *DB) Engine() *engine.Engine { return db.eng }

// Stats returns engine counters.
func (db *DB) Stats() engine.Stats { return db.eng.Stats() }

// Chronicle implements sqlparse.Catalog.
func (db *DB) Chronicle(name string) (*chronicle.Chronicle, bool) {
	return db.eng.Chronicle(name)
}

// Relation implements sqlparse.Catalog.
func (db *DB) Relation(name string) (*relation.Relation, bool) {
	return db.eng.Relation(name)
}

// View returns a persistent view handle by name.
func (db *DB) View(name string) (*view.View, bool) { return db.eng.View(name) }

// Append inserts tuples into a chronicle with the next sequence number,
// maintaining every affected persistent view before returning.
func (db *DB) Append(chronicleName string, tuples ...value.Tuple) (int64, error) {
	return db.eng.Append(chronicleName, tuples)
}

// Upsert applies a proactive relation update.
func (db *DB) Upsert(relationName string, t value.Tuple) error {
	return db.eng.Upsert(relationName, t)
}

// Lookup answers a summary query from a persistent view by group key. The
// read is serialized against appends, so it reflects every append that has
// returned — the "balance check before the next ATM withdrawal" guarantee.
func (db *DB) Lookup(viewName string, key ...value.Value) (Row, bool, error) {
	return db.eng.ViewLookup(viewName, value.Tuple(key))
}

// LookupRange returns the view rows whose group key is ≥ lo and < hi under
// tuple comparison (lo and hi may be key prefixes), in ascending key order.
// With a BTREE store this is an index range scan.
func (db *DB) LookupRange(viewName string, lo, hi Tuple) ([]Row, error) {
	return db.eng.ViewScanRange(viewName, lo, hi)
}
