// Package chronicledb is a from-scratch implementation of the chronicle
// data model of Jagadish, Mumick, and Silberschatz ("View Maintenance
// Issues for the Chronicle Data Model", PODS 1995).
//
// A chronicle database is the quadruple (C, R, L, V): append-only
// chronicles of transaction records, ordinary relations, a declarative
// view-definition language, and persistent views that are maintained
// incrementally after every append — in time independent of the chronicle
// size, without the chronicle even being stored.
//
// # Quick start
//
//	db, err := chronicledb.Open(chronicledb.Options{})
//	...
//	_, err = db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT)`)
//	_, err = db.Exec(`CREATE VIEW usage AS
//	    SELECT acct, SUM(minutes) AS total, COUNT(*) AS n
//	    FROM calls GROUP BY acct`)
//	_, err = db.Exec(`APPEND INTO calls VALUES ('alice', 12)`)
//	res, err := db.Exec(`SELECT * FROM usage WHERE acct = 'alice'`)
//
// Summary queries are answered from the view in O(1)–O(log |V|), never by
// scanning the transaction history; views defined in SCA₁ are maintained in
// constant time per append, SCA⋈ views in O(log |R|), and SCA views in
// relation-polynomial time (Theorem 4.5 of the paper). Full relational
// algebra — which would force chronicle-sized maintenance work — is
// rejected at planning time with the Theorem 4.3 justification.
//
// Open with a Dir to get durability: a checksummed write-ahead log plus
// view checkpoints, so recovery replays only the log tail instead of the
// full transactional history.
package chronicledb
