package chronicledb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"chronicledb/internal/fault"
)

// Concurrent group-commit stress: several goroutines drive AppendEach
// batches through the commit door at once — on a simulated disk so a power
// cut can be injected — and recovery must replay to a state consistent
// with what was acknowledged. Two phases per kernel layout:
//
//   - clean: every batch is acked, the disk is power-cut (dropping all
//     unsynced bytes), and the reopened state must contain exactly the
//     acked rows — group commit must not ack before its fsync covers the
//     batch;
//   - crash-at: the disk dies at a fixed operation index mid-run; each
//     worker's recovered row count must land between its acked count and
//     acked+batch (AppendEach gives each tuple its own transaction, so a
//     batch in flight at the crash may be partially durable).
//
// The whole test runs under -race in `make check`, which is what makes it
// a check on the door's locking, not just its durability.
func TestGroupCommitConcurrentStress(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Run("clean", func(t *testing.T) { groupCommitRun(t, shards, -1) })
			// Crash points sampled from a clean run's operation count.
			clean := fault.NewDisk()
			acked, _ := groupCommitWorkload(t, clean, shards)
			for _, a := range acked {
				if a == 0 {
					t.Fatal("clean probe run acked nothing")
				}
			}
			ops := clean.Ops()
			for _, frac := range []float64{0.25, 0.5, 0.9} {
				at := int(float64(ops) * frac)
				t.Run(fmt.Sprintf("crash@%d", at), func(t *testing.T) {
					groupCommitRun(t, shards, at)
				})
			}
		})
	}
}

const (
	gcWorkers = 4
	gcRounds  = 8
	gcBatch   = 16
)

func groupCommitOptions(disk *fault.Disk, shards int) Options {
	var chronon atomic.Int64
	return Options{
		Dir:     "/data",
		SyncWAL: true, // group commit: the default durable mode
		Shards:  shards,
		FS:      disk,
		Clock:   func() int64 { return chronon.Add(1) },
	}
}

// groupCommitWorkload runs the concurrent AppendEach workload and returns
// each worker's acked row count (rows in fully-acknowledged batches).
// Errors are expected once the disk has crashed or the DB degraded.
func groupCommitWorkload(t *testing.T, disk *fault.Disk, shards int) ([gcWorkers]int64, bool) {
	t.Helper()
	var acked [gcWorkers]int64
	db, err := Open(groupCommitOptions(disk, shards))
	if err != nil {
		return acked, false // crashed during Open
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE CHRONICLE calls (acct STRING, minutes INT) RETAIN ALL;
		CREATE VIEW usage AS SELECT acct, SUM(minutes) AS total, COUNT(*) AS n FROM calls GROUP BY acct`); err != nil {
		return acked, false
	}
	var wg sync.WaitGroup
	for w := 0; w < gcWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Tuple, gcBatch)
			for i := range batch {
				batch[i] = Tuple{Str(fmt.Sprintf("acct-%d", w)), Int(1)}
			}
			for r := 0; r < gcRounds; r++ {
				if _, _, err := db.AppendRows("calls", batch); err != nil {
					return // crash or degradation: stop, keep the acked count
				}
				atomic.AddInt64(&acked[w], gcBatch)
			}
		}(w)
	}
	wg.Wait()
	return acked, true
}

// groupCommitRun executes one phase: crashAt < 0 is the clean phase (all
// batches acked, power cut only after close), otherwise the disk dies at
// that operation index mid-run.
func groupCommitRun(t *testing.T, shards, crashAt int) {
	disk := fault.NewDisk()
	if crashAt >= 0 {
		disk.SetCrashAt(crashAt)
		disk.SetTorn(crashAt%2 == 1)
	}
	acked, schemaAcked := groupCommitWorkload(t, disk, shards)
	if crashAt < 0 && !schemaAcked {
		t.Fatal("clean phase failed to run the workload")
	}
	disk.PowerCut() // drop everything not fsynced
	disk.Heal()

	db, err := Open(groupCommitOptions(disk, shards))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close()
	if _, ok := db.Chronicle("calls"); !ok {
		if schemaAcked {
			t.Fatal("acked schema lost in crash")
		}
		return // crashed before DDL was durable: nothing more to check
	}

	// Recovered per-worker counts from the view (COUNT per account must
	// also equal SUM since every row carries minutes=1 — one internal
	// consistency check on replayed maintenance for free).
	for w := 0; w < gcWorkers; w++ {
		var n, total int64
		if row, ok, err := db.Lookup("usage", Str(fmt.Sprintf("acct-%d", w))); err != nil {
			t.Fatal(err)
		} else if ok {
			total, n = row[1].AsInt(), row[2].AsInt()
		}
		if n != total {
			t.Errorf("worker %d: COUNT=%d but SUM=%d — replayed maintenance diverged", w, n, total)
		}
		a := acked[w]
		if crashAt < 0 {
			if n != a {
				t.Errorf("worker %d: %d rows recovered, %d acked — group commit acked before durability", w, n, a)
			}
			continue
		}
		if n < a || n > a+gcBatch {
			t.Errorf("worker %d: %d rows recovered, want between %d (acked) and %d (acked+batch in flight)",
				w, n, a, a+gcBatch)
		}
	}
}
